"""The streaming search driver: incremental pricing with branch-and-bound.

:class:`SearchDriver` replaces the materialize-everything spine
(``collect_strategy_entries`` -> ``evaluate_entries_serial`` -> rank) with a
single pass over lazily enumerated :class:`~repro.search.source.StrategyEntry`
streams:

* entries are priced *as they arrive* through the compiled-profile fast path
  (:mod:`repro.cost.profile`), deduplicating identical communication
  patterns exactly like the eager pipeline did;
* an incumbent :class:`~repro.search.source.Watermark` tracks the best
  exactly-priced in-space time, per matrix and globally;
* under a :class:`~repro.query.PlanQuery` search budget (``max_candidates``
  / ``time_budget_s``) candidates whose closed-form lower bound
  (:mod:`repro.search.bounds`) exceeds the incumbent are rejected without
  being priced, whole placements can be skipped before synthesis, and
  enumeration stops at the budget — all *losslessly* for the best strategy:
  a candidate is only ever skipped when its most optimistic time is already
  worse than a plan the driver holds.

Without a budget the driver is exhaustive and reproduces the historical
pipeline bit for bit — same entries, same predicted floats, same
profile-cache traffic — which is what keeps the planning service's
fingerprint cache and the tier-1 determinism contracts sound.

With a :class:`~repro.service.parallel.ParallelEvaluator`, exhaustive runs
fan the whole stream out in one batch (identical to the historical pool
path), while budgeted runs price candidate chunks between watermark reads so
workers always race against a recent incumbent.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    runtime_checkable,
)

from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.simulator import ProgramSimulator
from repro.errors import ServiceError
from repro.obs.recorder import Stopwatch, get_recorder
from repro.search.bounds import program_lower_bound
from repro.search.source import (
    ROLE_BASELINE,
    ROLE_SEED,
    CandidateSource,
    SearchSpace,
    StrategyEntry,
    Watermark,
    default_sources,
)
from repro.synthesis.lowering import LoweredProgram
from repro.synthesis.pipeline import PlacementCandidate
from repro.synthesis.pruning import SearchStatistics
from repro.topology.topology import MachineTopology

__all__ = [
    "CandidateEvaluator",
    "SearchReport",
    "SearchResult",
    "SearchDriver",
    "driver_chunk_size",
]

logger = logging.getLogger(__name__)

_SENTINEL = object()

# Entries buffered between watermark reads on the budgeted pool path; small
# multiples of the worker count keep the incumbent fresh without starving
# the pool.
_CHUNK_PER_WORKER = 4


@runtime_checkable
class CandidateEvaluator(Protocol):
    """The formal evaluator contract the search driver prices through.

    ``n_workers`` is how wide the evaluator actually prices — the driver
    sizes its budgeted chunks from it (see :func:`driver_chunk_size`), so it
    is a *required* attribute, not an optional hint.
    :class:`~repro.service.parallel.ParallelEvaluator` satisfies this
    protocol; so must any duck-typed replacement.
    """

    n_workers: int

    def evaluate(
        self,
        programs: Sequence[LoweredProgram],
        bytes_per_device: float,
        algorithm: NCCLAlgorithm,
    ) -> List[float]:
        """Predicted seconds for each program, in input order."""
        ...


def driver_chunk_size(n_workers: int) -> int:
    """Entries buffered between watermark reads for an ``n_workers``-wide path.

    One shared formula so the pooled driver and the sharded driver
    (:mod:`repro.search.sharded`) agree on how much staleness a budgeted
    incumbent can accumulate: a few entries per worker, never below 8.
    """
    return max(_CHUNK_PER_WORKER * n_workers, 8)


@dataclass
class SearchReport:
    """Provenance counters of one streaming search (JSON-ready via to_dict)."""

    sources: List[str] = field(default_factory=list)
    budgeted: bool = False
    considered: int = 0          # search entries pulled from the stream
    ranked: int = 0              # entries that were priced and kept
    bound_rejected: int = 0      # skipped: lower bound > incumbent
    placements_pruned: int = 0   # whole matrices skipped before synthesis
    baseline_entries: int = 0    # baseline reference entries priced
    seeds: int = 0               # pinned entries priced to seed the incumbent
    watermark_updates: int = 0   # times a priced entry lowered the incumbent
    matrices_reached: int = 0    # placements whose entries were seen
    budget_stopped: bool = False  # stream cut by max_candidates
    time_stopped: bool = False    # stream cut by time_budget_s
    incumbent_seconds: Optional[float] = None  # final best exact time
    # Monotonic seconds from search start until the final incumbent cost was
    # *first* reached (ties keep the earliest), and whether the entry that
    # first reached it came from a seed source (a corpus/pinned warm start).
    time_to_incumbent_s: Optional[float] = None
    seeded_incumbent: bool = False
    batch_prices: int = 0         # vectorized batch-pricing kernel invocations
    batch_payloads: int = 0       # (program, payload) cells those kernels covered
    batch_fallbacks: int = 0      # batch calls that fell back to the scalar loop
    shards: int = 1               # worker processes the search ran across
    shard_steals: int = 0         # matrices claimed outside a shard's home slice
    # Per-shard provenance (matrices claimed, steals, counters, seconds),
    # populated only by the sharded driver.
    shard_stats: Optional[List[Dict[str, Any]]] = None

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "sources": list(self.sources),
            "budgeted": self.budgeted,
            "considered": self.considered,
            "ranked": self.ranked,
            "bound_rejected": self.bound_rejected,
            "placements_pruned": self.placements_pruned,
            "baseline_entries": self.baseline_entries,
            "seeds": self.seeds,
            "watermark_updates": self.watermark_updates,
            "matrices_reached": self.matrices_reached,
            "budget_stopped": self.budget_stopped,
            "time_stopped": self.time_stopped,
            "incumbent_seconds": self.incumbent_seconds,
            "time_to_incumbent_s": self.time_to_incumbent_s,
            "seeded_incumbent": self.seeded_incumbent,
            "batch_prices": self.batch_prices,
            "batch_payloads": self.batch_payloads,
            "batch_fallbacks": self.batch_fallbacks,
            "shards": self.shards,
            "shard_steals": self.shard_steals,
        }
        if self.shard_stats is not None:
            data["shard_stats"] = [dict(stats) for stats in self.shard_stats]
        return data

    def describe(self) -> str:
        stops = []
        if self.budget_stopped:
            stops.append("candidate budget")
        if self.time_stopped:
            stops.append("time budget")
        suffix = f"; stopped by {' + '.join(stops)}" if stops else ""
        return (
            f"{self.ranked} ranked of {self.considered} considered "
            f"({self.bound_rejected} bound-rejected, "
            f"{self.placements_pruned} placements pruned) over "
            f"{self.matrices_reached} matrices{suffix}"
        )


@dataclass
class SearchResult:
    """Everything one driver run produced, ready for ranking."""

    entries: List[StrategyEntry]
    predicted: List[float]
    candidates: List[PlacementCandidate]
    baselines: Dict[str, float]
    report: SearchReport
    statistics: SearchStatistics
    synthesis_seconds: float
    evaluation_seconds: float

    def best_per_matrix(self) -> Dict[int, float]:
        """Incumbent best exact time per reached matrix (candidate index keyed)."""
        index_of = {id(c): i for i, c in enumerate(self.candidates)}
        best: Dict[int, float] = {}
        for entry, seconds in zip(self.entries, self.predicted):
            index = index_of.get(id(entry.candidate))
            if index is None:
                continue
            known = best.get(index)
            if known is None or seconds < known:
                best[index] = seconds
        return best


class _SerialPricer:
    """Exact pricing with the eager pipeline's signature deduplication.

    One simulator call per distinct ``(num_devices, signature)``; duplicates
    copy the first price without touching the simulator, so the
    profile-cache hit/miss provenance is identical to the historical
    ``evaluate_entries_serial`` accounting.
    """

    def __init__(self, simulator: ProgramSimulator, space: SearchSpace) -> None:
        self.simulator = simulator
        self.bytes_per_device = space.query.bytes_per_device
        self.algorithm = space.query.algorithm
        self._first: Dict[Tuple, float] = {}

    def price(self, entry: StrategyEntry) -> float:
        program = entry.lowered
        if program.num_steps == 0:
            return 0.0
        key = (program.num_devices, program.signature())
        known = self._first.get(key)
        if known is not None:
            return known
        seconds = self.simulator.simulate(
            program, self.bytes_per_device, self.algorithm
        ).total_seconds
        self._first[key] = seconds
        return seconds

    def price_many(self, entries: Sequence[StrategyEntry]) -> List[float]:
        """Price a buffered entry list through one vectorized kernel.

        Shares the first-occurrence memo with :meth:`price`: duplicates —
        within the batch or against entries priced earlier — copy the first
        price, and the distinct programs reach the simulator in buffer
        order, so profile compilation order and hit/miss provenance are
        exactly what per-entry :meth:`price` calls would produce.  The
        prices themselves are exact-equal floats (the
        :mod:`repro.cost.batch` contract), so rankings can never shift.
        """
        out = [0.0] * len(entries)
        distinct: List[LoweredProgram] = []
        keys: List[Tuple] = []
        positions: Dict[Tuple, List[int]] = {}
        for i, entry in enumerate(entries):
            program = entry.lowered
            if program.num_steps == 0:
                continue
            key = (program.num_devices, program.signature())
            known = self._first.get(key)
            if known is not None:
                out[i] = known
                continue
            bucket = positions.get(key)
            if bucket is None:
                positions[key] = [i]
                distinct.append(program)
                keys.append(key)
            else:
                bucket.append(i)
        if distinct:
            totals = self.simulator.simulate_many(
                distinct, self.bytes_per_device, self.algorithm
            )
            for key, seconds in zip(keys, totals):
                self._first[key] = seconds
                for i in positions[key]:
                    out[i] = seconds
        return out


class SearchDriver:
    """Streams entries from candidate sources into an incrementally priced plan.

    Parameters
    ----------
    topology / cost_model:
        The pricing context (must match the query's fingerprint context).
    simulator:
        Optional caller-owned simulator whose compiled-profile cache then
        persists across runs (payload ladders re-price instead of
        recompiling).  A fresh one is used per run otherwise.
    evaluator:
        Optional :class:`~repro.service.parallel.ParallelEvaluator`; its
        parent-side simulator takes over profile caching and accounting.
    recorder:
        The telemetry recorder (:mod:`repro.obs`) search spans and counters
        report into; defaults to the process-wide recorder at construction
        time (a no-op unless telemetry was enabled).
    """

    def __init__(
        self,
        topology: MachineTopology,
        cost_model: CostModel,
        simulator: Optional[ProgramSimulator] = None,
        evaluator=None,
        recorder=None,
    ) -> None:
        self.topology = topology
        self.cost_model = cost_model
        self.simulator = simulator
        if evaluator is not None:
            # The protocol is structural but enforced up front: a duck-typed
            # evaluator without n_workers used to silently price with a
            # default chunk size, which made the budgeted pooled and sharded
            # paths disagree on watermark staleness.
            if not callable(getattr(evaluator, "evaluate", None)):
                raise ServiceError(
                    f"evaluator {type(evaluator).__name__} has no evaluate() "
                    "method (see repro.search.driver.CandidateEvaluator)"
                )
            n_workers = getattr(evaluator, "n_workers", None)
            if not isinstance(n_workers, int) or n_workers < 1:
                raise ServiceError(
                    f"evaluator {type(evaluator).__name__} must declare "
                    f"n_workers as a positive int, got {n_workers!r} "
                    "(see repro.search.driver.CandidateEvaluator)"
                )
        self.evaluator = evaluator
        self.recorder = recorder if recorder is not None else get_recorder()

    # ------------------------------------------------------------------ #
    def run(
        self,
        space: SearchSpace,
        sources: Optional[Sequence[CandidateSource]] = None,
        watermark: Optional[Watermark] = None,
    ) -> SearchResult:
        """Drive one search over ``space`` and return everything it produced.

        ``watermark`` injects a caller-owned incumbent — anything with the
        :class:`~repro.search.source.Watermark` interface (a ``seconds``
        attribute and an ``update(seconds) -> bool`` method).  The sharded
        driver passes a cross-process view here so one shard's incumbent
        bounds every other shard's search; ``None`` uses a fresh private one.
        """
        source_list = list(sources) if sources is not None else default_sources()
        with self.recorder.span(
            "search.run", budgeted=space.query.has_search_budget
        ):
            return self._run(space, source_list, watermark=watermark)

    def _run(
        self,
        space: SearchSpace,
        source_list: List[CandidateSource],
        watermark: Optional[Watermark] = None,
    ) -> SearchResult:
        query = space.query
        budgeted = query.has_search_budget
        if watermark is None:
            watermark = Watermark()
        report = SearchReport(
            sources=[source.name for source in source_list], budgeted=budgeted
        )
        statistics = SearchStatistics()
        # Prefer the evaluator's parent-side simulator (shared profile cache
        # and the counters provenance reports); a duck-typed evaluator
        # without one falls back to the caller's or a fresh simulator, used
        # only for bound peeks and non-batched reference pricing.
        simulator = (
            getattr(self.evaluator, "simulator", None)
            if self.evaluator is not None
            else self.simulator
        )
        if simulator is None:
            simulator = (
                self.simulator
                if self.simulator is not None
                else ProgramSimulator(self.topology, self.cost_model)
            )
        pricer = _SerialPricer(simulator, space)

        entries: List[StrategyEntry] = []
        predicted: List[float] = []
        candidates: List[PlacementCandidate] = []
        seen_candidates: Set[int] = set()
        baselines: Dict[str, float] = {}
        # The synthesis/evaluation wall-clock split is part of the outcome
        # provenance contract; stopwatches accumulate it across the
        # interleaved pulls and pricing calls.
        synthesis_watch = Stopwatch()
        evaluation_watch = Stopwatch()
        start = time.perf_counter()

        # Incumbent-time tracking: the wall-clock moment the final incumbent
        # cost is *first* reached, and whether a seed reached it.  Strict
        # ``<`` keeps the earliest entry at the final cost, so a seed
        # replaying the eventual winner is credited even though later search
        # entries tie it with the exact same float.
        incumbent_value = float("inf")
        incumbent_at: Optional[float] = None
        incumbent_seeded = False

        def note_price(seconds: float, seeded: bool = False) -> None:
            nonlocal incumbent_value, incumbent_at, incumbent_seeded
            if seconds < incumbent_value:
                incumbent_value = seconds
                incumbent_at = time.perf_counter() - start
                incumbent_seeded = seeded

        # Exhaustive pool path: one batched evaluate over the whole stream,
        # exactly like the historical parallel spine.
        batch_all = self.evaluator is not None and not budgeted
        batch_items: List[Tuple[StrategyEntry, str]] = []
        # Exhaustive serial path: nothing reads or updates the watermark here
        # — seeds are still priced per-entry (they time-stamp the incumbent
        # early) but only lower the watermark under a search budget, so an
        # exhaustive stream never prunes and a seeded exhaustive plan stays
        # bit-identical to unseeded.  The stream is therefore buffered and
        # priced in one vectorized batch at the end — same entries, same
        # floats, same profile-cache traffic as per-entry pricing.
        batch_serial = self.evaluator is None and not budgeted
        serial_items: List[Tuple[StrategyEntry, str]] = []
        batch_before = (
            simulator.batch_prices,
            simulator.batch_payloads,
            simulator.batch_fallbacks,
        )
        # Budgeted pool path: survivors buffered between watermark reads.
        chunk: List[StrategyEntry] = []
        # n_workers is a formal attribute of the evaluator protocol
        # (validated at construction), so the chunk size is explicit — no
        # getattr default that silently mis-sizes the budgeted pool path.
        chunk_size = (
            driver_chunk_size(self.evaluator.n_workers)
            if self.evaluator is not None
            else 1
        )

        def register(candidate: PlacementCandidate) -> None:
            if id(candidate) not in seen_candidates:
                seen_candidates.add(id(candidate))
                candidates.append(candidate)

        def price_serial(entry: StrategyEntry) -> float:
            with evaluation_watch:
                return pricer.price(entry)

        def record_baseline(entry: StrategyEntry, seconds: float) -> None:
            tag = entry.tag or entry.mnemonic
            known = baselines.get(tag)
            if known is None or seconds < known:
                baselines[tag] = seconds

        def flush_chunk() -> None:
            """Price the buffered search entries through the pool, bounds first."""
            if not chunk:
                return
            pending = list(chunk)
            chunk.clear()
            with evaluation_watch:
                survivors: List[StrategyEntry] = []
                for entry in pending:
                    if not entry.is_default_all_reduce:
                        bound = self._entry_bound(entry, space, simulator)
                        if bound > watermark.seconds:
                            report.bound_rejected += 1
                            continue
                    survivors.append(entry)
                if survivors:
                    seconds_list = self.evaluator.evaluate(
                        [entry.lowered for entry in survivors],
                        query.bytes_per_device,
                        query.algorithm,
                    )
                    for entry, seconds in zip(survivors, seconds_list):
                        entries.append(entry)
                        predicted.append(seconds)
                        note_price(seconds)
                        if watermark.update(seconds):
                            report.watermark_updates += 1

        stopped = False
        for source in source_list:
            if stopped:
                break
            with self.recorder.span(
                "search.source", source=source.name, role=source.role
            ):
                iterator = source.entries(space, watermark, report)
                is_search = source.role not in (ROLE_BASELINE, ROLE_SEED)
                while True:
                    if is_search and budgeted:
                        if (
                            query.max_candidates is not None
                            and report.considered >= query.max_candidates
                        ):
                            report.budget_stopped = True
                            stopped = True
                            logger.debug(
                                "stopping search: candidate budget %d reached",
                                query.max_candidates,
                            )
                            break
                        # The first search entry is always considered, however
                        # small the budget: a plan must hold at least one ranked
                        # strategy (the first placement's default AllReduce) to
                        # be a plan at all.
                        if (
                            query.time_budget_s is not None
                            and report.considered > 0
                            and time.perf_counter() - start > query.time_budget_s
                        ):
                            report.time_stopped = True
                            stopped = True
                            logger.debug(
                                "stopping search: time budget %.3fs exhausted",
                                query.time_budget_s,
                            )
                            break
                    with synthesis_watch:
                        item = next(iterator, _SENTINEL)
                    if item is _SENTINEL:
                        break
                    if source.role == ROLE_BASELINE:
                        report.baseline_entries += 1
                        if batch_all:
                            batch_items.append((item, ROLE_BASELINE))
                        elif batch_serial:
                            serial_items.append((item, ROLE_BASELINE))
                        else:
                            record_baseline(item, price_serial(item))
                        continue
                    if source.role == ROLE_SEED:
                        report.seeds += 1
                        if batch_all:
                            batch_items.append((item, ROLE_SEED))
                        else:
                            seconds = price_serial(item)
                            note_price(seconds, seeded=True)
                            # Seeds only lower the watermark under a search
                            # budget: an exhaustive stream must never prune,
                            # so a seeded exhaustive plan stays bit-identical
                            # to unseeded (which keeps corpus-seeded plans
                            # sound to service-cache).
                            if budgeted and watermark.update(seconds):
                                report.watermark_updates += 1
                        continue
                    report.considered += 1
                    register(item.candidate)
                    if batch_all:
                        batch_items.append((item, "search"))
                        continue
                    if batch_serial:
                        serial_items.append((item, "search"))
                        continue
                    if self.evaluator is not None:
                        chunk.append(item)
                        if len(chunk) >= chunk_size:
                            flush_chunk()
                        continue
                    if budgeted and not item.is_default_all_reduce:
                        with evaluation_watch:
                            bound = self._entry_bound(item, space, simulator)
                        if bound > watermark.seconds:
                            report.bound_rejected += 1
                            continue
                    seconds = price_serial(item)
                    entries.append(item)
                    predicted.append(seconds)
                    note_price(seconds)
                    if budgeted and watermark.update(seconds):
                        report.watermark_updates += 1

        if batch_all and batch_items:
            with evaluation_watch:
                seconds_list = self.evaluator.evaluate(
                    [entry.lowered for entry, _ in batch_items],
                    query.bytes_per_device,
                    query.algorithm,
                )
                for (entry, role), seconds in zip(batch_items, seconds_list):
                    if role == ROLE_BASELINE:
                        record_baseline(entry, seconds)
                    elif role == ROLE_SEED:
                        # batch_all is the exhaustive pool path: seeds never
                        # lower the watermark without a budget (see above).
                        note_price(seconds, seeded=True)
                    else:
                        entries.append(entry)
                        predicted.append(seconds)
                        note_price(seconds)
        if batch_serial and serial_items:
            with evaluation_watch:
                seconds_list = pricer.price_many(
                    [entry for entry, _ in serial_items]
                )
            for (entry, role), seconds in zip(serial_items, seconds_list):
                if role == ROLE_BASELINE:
                    record_baseline(entry, seconds)
                else:
                    entries.append(entry)
                    predicted.append(seconds)
                    note_price(seconds)
        flush_chunk()

        # Aggregate the synthesizer statistics only now: a streaming source
        # keeps accumulating counters on a candidate's SynthesisResult after
        # its first entry was seen.
        for candidate in candidates:
            if candidate.synthesis is not None:
                statistics.merge(candidate.synthesis.statistics)

        report.ranked = len(entries)
        report.matrices_reached = len(candidates)
        report.batch_prices = simulator.batch_prices - batch_before[0]
        report.batch_payloads = simulator.batch_payloads - batch_before[1]
        report.batch_fallbacks = simulator.batch_fallbacks - batch_before[2]
        if watermark.seconds < float("inf"):
            report.incumbent_seconds = watermark.seconds
        elif predicted:
            report.incumbent_seconds = min(predicted)
        if incumbent_at is not None:
            report.time_to_incumbent_s = incumbent_at
            report.seeded_incumbent = incumbent_seeded

        logger.debug(
            "search complete: %d considered, %d ranked, %d bound-rejected, "
            "%d placements pruned, %d watermark updates",
            report.considered,
            report.ranked,
            report.bound_rejected,
            report.placements_pruned,
            report.watermark_updates,
        )
        recorder = self.recorder
        recorder.count("search.considered", report.considered)
        recorder.count("search.ranked", report.ranked)
        recorder.count("search.bound_rejected", report.bound_rejected)
        recorder.count("search.placements_pruned", report.placements_pruned)
        recorder.count("search.watermark_updates", report.watermark_updates)
        recorder.count("search.baseline_entries", report.baseline_entries)
        recorder.observe("search.synthesis_seconds", synthesis_watch.seconds)
        recorder.observe("search.evaluation_seconds", evaluation_watch.seconds)
        if report.time_to_incumbent_s is not None:
            recorder.observe(
                "search.time_to_incumbent_s", report.time_to_incumbent_s
            )
        return SearchResult(
            entries=entries,
            predicted=predicted,
            candidates=candidates,
            baselines=baselines,
            report=report,
            statistics=statistics,
            synthesis_seconds=synthesis_watch.seconds,
            evaluation_seconds=evaluation_watch.seconds,
        )

    # ------------------------------------------------------------------ #
    def _entry_bound(
        self,
        entry: StrategyEntry,
        space: SearchSpace,
        simulator: ProgramSimulator,
    ) -> float:
        """The tightest admissible lower bound available for ``entry`` now."""
        program = entry.lowered
        if program.num_steps == 0:
            return 0.0
        profile = simulator.peek_profile(program)
        if profile is not None:
            return profile.lower_bound(
                space.query.bytes_per_device, space.query.algorithm, space.cost_model
            )
        return program_lower_bound(program, space.topology, space.cost_model)
