"""Sharded cold-plan search: the placement space across worker processes.

ROADMAP item 2 made real.  :class:`ShardedSearchDriver` partitions the
canonical parallelism-matrix enumeration across ``multiprocessing`` workers.
Each worker runs the existing :class:`~repro.search.driver.SearchDriver`
loop over one matrix at a time — the *identical* per-matrix code path,
reached through ``matrix_indices``-filtered :class:`BaselineSource` /
:class:`SynthesisSource` streams — while publishing incumbent costs through
a :class:`SharedWatermark` (one ``multiprocessing.Value`` per matrix plus a
global one, mirroring :class:`~repro.search.source.Watermark` semantics), so
one shard's good plan bounds every other shard's budgeted search.

Work distribution is a :class:`PlacementLedger`: every matrix index lives in
one shared claim table, each shard owns a round-robin "home" slice, and a
shard that exhausts its home slice *steals* the next unclaimed matrix from
anyone else's — uneven placements (one huge matrix next to many trivial
ones) therefore never strand idle workers.

Equivalence contract (enforced by ``tests/test_search_driver.py`` and the CI
``shard-equivalence`` job): an **exhaustive** sharded search is bit-identical
to ``shards=1`` — same entries in the same order, same predicted floats,
same baselines, same fingerprint-addressed plan — because exhaustive pricing
is a pure per-matrix function and the parent reassembles per-matrix results
in canonical matrix order.  **Budgeted** sharded searches stay lossless for
the best strategy (bounds only ever reject candidates provably worse than an
exactly-priced incumbent) but the ranking tail may differ from serial, which
is exactly why budgeted plans are never service-cached.

Telemetry follows the pool-worker pattern (:mod:`repro.service.parallel`):
each worker records into its own :class:`~repro.obs.recorder.Recorder`,
drains it once, and ships the delta home; the parent merges the deltas
(drain/merge is associative), so per-shard counters, bound-rejection rates
and span trees land in ``PlanOutcome.provenance()`` like any other search.
"""

from __future__ import annotations

import dataclasses
import logging
import multiprocessing
import queue as queue_module
import time
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cost.model import CostModel
from repro.cost.simulator import ProgramSimulator
from repro.errors import SearchError
from repro.obs.recorder import (
    NULL_RECORDER,
    Recorder,
    Stopwatch,
    current_trace_context,
    get_recorder,
)
from repro.query import PlanQuery
from repro.search.driver import SearchDriver, SearchReport, SearchResult
from repro.search.source import (
    ROLE_BASELINE,
    ROLE_SEED,
    BaselineSource,
    CandidateSource,
    SearchSpace,
    SynthesisSource,
    default_sources,
)
from repro.synthesis.pipeline import enumerate_search_matrices
from repro.synthesis.pruning import SearchStatistics
from repro.topology.topology import MachineTopology

__all__ = ["PlacementLedger", "SharedWatermark", "ShardedSearchDriver"]

logger = logging.getLogger(__name__)

# How long the parent waits between liveness checks while collecting worker
# messages, and how long a worker gets to exit after its final message.
_POLL_SECONDS = 0.25
_JOIN_SECONDS = 10.0


class SharedWatermark:
    """A cross-process incumbent: one value per matrix plus the global best.

    Mirrors :class:`~repro.search.source.Watermark` semantics — starts at
    infinity, only ever lowers, ``update`` reports improvement — over
    ``multiprocessing`` shared memory so every shard prices against the
    freshest incumbent any shard has found.  :meth:`matrix_view` binds a
    matrix index: the view's ``update`` publishes to both that matrix's slot
    and the global value, while its ``seconds`` reads the *global* incumbent
    (the legal bound for rejecting any candidate anywhere).
    """

    def __init__(self, num_matrices: int, ctx=None) -> None:
        ctx = ctx if ctx is not None else multiprocessing.get_context()
        self._lock = ctx.Lock()
        # lock=False: every write happens under self._lock, and reads of one
        # aligned double are atomic on every platform we run on.
        self._best = ctx.Value("d", float("inf"), lock=False)
        self._per_matrix = ctx.Array("d", [float("inf")] * max(num_matrices, 1), lock=False)

    @property
    def seconds(self) -> float:
        return self._best.value

    def matrix_seconds(self, index: int) -> float:
        return self._per_matrix[index]

    def update(self, seconds: float, matrix_index: Optional[int] = None) -> bool:
        """Lower the incumbent(s) to ``seconds`` if better; True on global improvement."""
        with self._lock:
            if matrix_index is not None and seconds < self._per_matrix[matrix_index]:
                self._per_matrix[matrix_index] = seconds
            if seconds < self._best.value:
                self._best.value = seconds
                return True
        return False

    def matrix_view(self, index: int) -> "_MatrixWatermarkView":
        return _MatrixWatermarkView(self, index)


class _MatrixWatermarkView:
    """The Watermark-shaped handle a per-matrix driver run holds."""

    __slots__ = ("_shared", "_index")

    def __init__(self, shared: SharedWatermark, index: int) -> None:
        self._shared = shared
        self._index = index

    @property
    def seconds(self) -> float:
        return self._shared.seconds

    def update(self, seconds: float) -> bool:
        return self._shared.update(seconds, matrix_index=self._index)


class PlacementLedger:
    """The shared placement queue: home slices plus work stealing.

    Matrix index ``i``'s home shard is ``i % shards``.  :meth:`claim` hands a
    shard the first unclaimed index from its home slice; once that slice is
    exhausted the shard steals the first unclaimed index from anywhere —
    dynamic load balancing for uneven placements without ever claiming a
    matrix twice.
    """

    def __init__(self, num_matrices: int, shards: int, ctx=None) -> None:
        if shards < 1:
            raise SearchError(f"shards must be >= 1, got {shards}")
        ctx = ctx if ctx is not None else multiprocessing.get_context()
        self.num_matrices = num_matrices
        self.shards = shards
        self._lock = ctx.Lock()
        self._claimed = ctx.Array("b", [0] * max(num_matrices, 1), lock=False)

    def claim(self, shard: int) -> Optional[Tuple[int, bool]]:
        """The next matrix index for ``shard``: ``(index, stolen)`` or None."""
        with self._lock:
            for index in range(shard % self.shards, self.num_matrices, self.shards):
                if not self._claimed[index]:
                    self._claimed[index] = 1
                    return index, False
            for index in range(self.num_matrices):
                if not self._claimed[index]:
                    self._claimed[index] = 1
                    return index, True
        return None

    def claimed_count(self) -> int:
        with self._lock:
            return sum(1 for index in range(self.num_matrices) if self._claimed[index])


def _shard_worker(
    shard: int,
    shards: int,
    topology: MachineTopology,
    cost_model: CostModel,
    query: PlanQuery,
    node_limit: int,
    validate: bool,
    ledger: PlacementLedger,
    watermark: SharedWatermark,
    budget_counter,
    deadline: Optional[float],
    telemetry_enabled: bool,
    parent_ctx: Optional[Tuple[str, str]],
    channel,
) -> None:
    """One shard: claim matrices, run the serial driver on each, ship results.

    Every message on ``channel`` is a tuple tagged ``"matrix"`` (one
    per-matrix :class:`SearchResult` payload), ``"done"`` (the shard summary
    plus its drained telemetry delta) or ``"error"`` (a formatted traceback).
    """
    try:
        recorder = Recorder() if telemetry_enabled else NULL_RECORDER
        simulator = ProgramSimulator(topology, cost_model, recorder=recorder)
        driver = SearchDriver(
            topology, cost_model, simulator=simulator, recorder=recorder
        )
        steals = 0
        claimed: List[int] = []
        watch = Stopwatch()
        cpu_start = time.process_time()
        with watch, recorder.span("search.shard", _parent=parent_ctx, shard=shard):
            while True:
                claim = ledger.claim(shard)
                if claim is None:
                    break
                index, stolen = claim
                steals += int(stolen)
                claimed.append(index)
                sub_query, search_enabled = _matrix_budget(
                    query, budget_counter, deadline
                )
                sources: List[CandidateSource] = [
                    BaselineSource(matrix_indices=(index,))
                ]
                if search_enabled:
                    sources.append(SynthesisSource(matrix_indices=(index,)))
                space = SearchSpace(
                    topology=topology,
                    cost_model=cost_model,
                    query=sub_query,
                    node_limit=node_limit,
                    validate=validate,
                )
                result = driver.run(
                    space, sources=sources, watermark=watermark.matrix_view(index)
                )
                if not search_enabled:
                    # The search stream was cut before this matrix: surface
                    # the same stop flags the serial driver would have set.
                    result.report.budget_stopped = budget_counter is not None
                    result.report.time_stopped = (
                        deadline is not None and time.time() >= deadline
                    )
                elif budget_counter is not None:
                    with budget_counter.get_lock():
                        budget_counter.value += result.report.considered
                channel.put(("matrix", shard, index, _matrix_payload(result)))
        summary = {
            "shard": shard,
            "matrices": claimed,
            "steals": steals,
            "seconds": watch.seconds,
            # Process CPU time: the shard's actual work, independent of how
            # many cores the machine had to run the shards on — what the
            # sharding benchmark's achievable-speedup gate is computed from.
            "cpu_seconds": time.process_time() - cpu_start,
            "profile_hits": simulator.profile_hits,
            "profile_misses": simulator.profile_misses,
        }
        delta = recorder.drain() if recorder.enabled else None
        channel.put(("done", shard, summary, delta))
    except BaseException:
        channel.put(("error", shard, traceback.format_exc(), None))


def _matrix_budget(
    query: PlanQuery, budget_counter, deadline: Optional[float]
) -> Tuple[PlanQuery, bool]:
    """The per-matrix query under the *remaining* shared search budget.

    Returns ``(sub_query, search_enabled)``.  Budget accounting is
    cooperative: each shard reads the remaining allowance at claim time and
    deducts what it actually considered afterwards, so concurrent shards can
    overshoot the global budget by at most one matrix's entries each —
    budgeted sharded searches are approximate by design (and never cached).
    """
    replacements: Dict[str, Any] = {}
    if budget_counter is not None:
        with budget_counter.get_lock():
            spent = budget_counter.value
        remaining = query.max_candidates - spent
        if remaining <= 0:
            return query, False
        replacements["max_candidates"] = remaining
    if deadline is not None:
        remaining_s = deadline - time.time()
        if remaining_s <= 0:
            return query, False
        replacements["time_budget_s"] = remaining_s
    if replacements:
        return dataclasses.replace(query, **replacements), True
    return query, True


def _matrix_payload(result: SearchResult) -> Tuple:
    """What one per-matrix run ships home (pickled as one message, so the
    entry→candidate object identity within the matrix survives the hop)."""
    return (
        result.entries,
        result.predicted,
        result.candidates,
        result.baselines,
        result.report,
        result.statistics,
        result.synthesis_seconds,
        result.evaluation_seconds,
    )


class ShardedSearchDriver:
    """Drop-in :class:`SearchDriver` running the search across processes.

    Same ``run(space, sources) -> SearchResult`` surface.  Seeds
    (``ROLE_SEED`` sources, e.g. :class:`~repro.search.PinnedPlanSource`)
    are priced in the parent first so the shared incumbent starts warm;
    baseline and synthesis streams must be the stock sources — they are
    re-instantiated per matrix inside each worker, which is what makes the
    sharded stream provably the serial stream reordered by matrix.

    ``shards`` is the *requested* width; the effective width is capped at
    the matrix count, and a one-matrix (or ``shards=1``) search falls back
    to the serial driver outright.
    """

    def __init__(
        self,
        topology: MachineTopology,
        cost_model: CostModel,
        shards: int,
        simulator: Optional[ProgramSimulator] = None,
        recorder=None,
    ) -> None:
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise SearchError(f"shards must be a positive integer, got {shards!r}")
        self.topology = topology
        self.cost_model = cost_model
        self.shards = shards
        self.simulator = simulator
        self.recorder = recorder if recorder is not None else get_recorder()

    # ------------------------------------------------------------------ #
    def run(
        self,
        space: SearchSpace,
        sources: Optional[Sequence[CandidateSource]] = None,
    ) -> SearchResult:
        source_list = list(sources) if sources is not None else default_sources()
        seed_sources, shardable = _split_sources(source_list)

        query = space.query
        matrices = enumerate_search_matrices(
            self.topology.hierarchy, query.axes, query.request, query.max_matrices
        )
        effective = min(self.shards, len(matrices))
        if effective <= 1:
            return SearchDriver(
                self.topology,
                self.cost_model,
                simulator=self.simulator,
                recorder=self.recorder,
            ).run(space, sources=source_list)

        with self.recorder.span(
            "search.run", budgeted=query.has_search_budget, shards=effective
        ) as root:
            parent_ctx = (
                (root.trace_id, root.span_id)
                if root.trace_id is not None
                else current_trace_context()
            )
            return self._run_sharded(
                space, source_list, seed_sources, matrices, effective, parent_ctx
            )

    # ------------------------------------------------------------------ #
    def _run_sharded(
        self,
        space: SearchSpace,
        source_list: List[CandidateSource],
        seed_sources: List[CandidateSource],
        matrices: Sequence,
        effective: int,
        parent_ctx: Optional[Tuple[str, str]],
    ) -> SearchResult:
        query = space.query
        ctx = multiprocessing.get_context()
        watermark = SharedWatermark(len(matrices), ctx)
        ledger = PlacementLedger(len(matrices), effective, ctx)
        report = SearchReport(
            sources=[source.name for source in source_list],
            budgeted=query.has_search_budget,
            shards=effective,
        )

        # Seeds are priced in the parent before any worker starts, so every
        # shard's very first bound check already races a warm incumbent —
        # the same ordering the serial driver guarantees (seed sources come
        # before the synthesis stream).  As in the serial driver, seeds only
        # lower the shared watermark under a search budget: exhaustive
        # sharded plans must stay bit-identical to unseeded serial ones.
        start = time.perf_counter()
        incumbent_value = float("inf")
        incumbent_at: Optional[float] = None
        incumbent_seeded = False

        def note_price(seconds: float, seeded: bool = False) -> None:
            nonlocal incumbent_value, incumbent_at, incumbent_seeded
            if seconds < incumbent_value:
                incumbent_value = seconds
                incumbent_at = time.perf_counter() - start
                incumbent_seeded = seeded

        seed_watch = Stopwatch()
        if seed_sources:
            simulator = (
                self.simulator
                if self.simulator is not None
                else ProgramSimulator(self.topology, self.cost_model)
            )
            with seed_watch:
                for source in seed_sources:
                    for entry in source.entries(space, watermark, report):
                        report.seeds += 1
                        program = entry.lowered
                        seconds = (
                            0.0
                            if program.num_steps == 0
                            else simulator.simulate(
                                program, query.bytes_per_device, query.algorithm
                            ).total_seconds
                        )
                        note_price(seconds, seeded=True)
                        if query.has_search_budget and watermark.update(seconds):
                            report.watermark_updates += 1

        budget_counter = (
            ctx.Value("l", 0) if query.max_candidates is not None else None
        )
        deadline = (
            time.time() + query.time_budget_s
            if query.time_budget_s is not None
            else None
        )
        channel = ctx.Queue()
        workers = [
            ctx.Process(
                target=_shard_worker,
                name=f"repro-search-shard-{shard}",
                args=(
                    shard,
                    effective,
                    self.topology,
                    self.cost_model,
                    query,
                    space.node_limit,
                    space.validate,
                    ledger,
                    watermark,
                    budget_counter,
                    deadline,
                    self.recorder.enabled,
                    parent_ctx,
                    channel,
                ),
                daemon=True,
            )
            for shard in range(effective)
        ]
        for worker in workers:
            worker.start()

        per_matrix: Dict[int, Tuple] = {}
        summaries: List[Dict[str, Any]] = []
        deltas = []
        try:
            pending = set(range(effective))
            while pending:
                try:
                    message = channel.get(timeout=_POLL_SECONDS)
                except queue_module.Empty:
                    _check_liveness(workers, pending)
                    continue
                kind, shard = message[0], message[1]
                if kind == "matrix":
                    per_matrix[message[2]] = message[3]
                    # Incumbent timing is a parent-side wall-clock fact: a
                    # matrix's best price "arrives" when its message does.
                    matrix_predicted = message[3][1]
                    if matrix_predicted:
                        note_price(min(matrix_predicted))
                elif kind == "done":
                    summaries.append(message[2])
                    if message[3] is not None:
                        deltas.append(message[3])
                    pending.discard(shard)
                else:  # "error"
                    raise SearchError(
                        f"search shard {shard} failed:\n{message[2]}"
                    )
        except BaseException:
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
            raise
        finally:
            for worker in workers:
                worker.join(timeout=_JOIN_SECONDS)
            channel.close()

        for delta in deltas:
            self.recorder.merge(delta)
        report.time_to_incumbent_s = incumbent_at
        report.seeded_incumbent = incumbent_at is not None and incumbent_seeded
        return self._assemble(
            space, report, watermark, per_matrix, summaries, seed_watch.seconds
        )

    # ------------------------------------------------------------------ #
    def _assemble(
        self,
        space: SearchSpace,
        report: SearchReport,
        watermark: SharedWatermark,
        per_matrix: Dict[int, Tuple],
        summaries: List[Dict[str, Any]],
        seed_seconds: float,
    ) -> SearchResult:
        """Reassemble per-matrix results in canonical matrix order.

        Concatenating the per-matrix entry streams in enumeration order *is*
        the serial stream: each worker ran the identical per-matrix sources,
        and exhaustive pricing never depends on what other matrices did.
        """
        entries, predicted, candidates = [], [], []
        baselines: Dict[str, float] = {}
        statistics = SearchStatistics()
        synthesis_seconds = seed_seconds
        evaluation_seconds = 0.0
        for index in sorted(per_matrix):
            (
                m_entries,
                m_predicted,
                m_candidates,
                m_baselines,
                m_report,
                m_statistics,
                m_synthesis,
                m_evaluation,
            ) = per_matrix[index]
            entries.extend(m_entries)
            predicted.extend(m_predicted)
            candidates.extend(m_candidates)
            for tag, seconds in m_baselines.items():
                known = baselines.get(tag)
                if known is None or seconds < known:
                    baselines[tag] = seconds
            statistics.merge(m_statistics)
            synthesis_seconds += m_synthesis
            evaluation_seconds += m_evaluation
            report.considered += m_report.considered
            report.bound_rejected += m_report.bound_rejected
            report.placements_pruned += m_report.placements_pruned
            report.baseline_entries += m_report.baseline_entries
            report.watermark_updates += m_report.watermark_updates
            report.batch_prices += m_report.batch_prices
            report.batch_payloads += m_report.batch_payloads
            report.batch_fallbacks += m_report.batch_fallbacks
            report.budget_stopped = report.budget_stopped or m_report.budget_stopped
            report.time_stopped = report.time_stopped or m_report.time_stopped

        report.ranked = len(entries)
        report.matrices_reached = len(candidates)
        report.shard_steals = sum(summary["steals"] for summary in summaries)
        report.shard_stats = sorted(summaries, key=lambda s: s["shard"])
        if watermark.seconds < float("inf"):
            report.incumbent_seconds = watermark.seconds
        elif predicted:
            report.incumbent_seconds = min(predicted)

        self.recorder.count("search.shard_steals", report.shard_steals)
        logger.debug(
            "sharded search complete: %d shards, %d matrices, %d steals, "
            "%d considered, %d ranked",
            report.shards,
            report.matrices_reached,
            report.shard_steals,
            report.considered,
            report.ranked,
        )
        return SearchResult(
            entries=entries,
            predicted=predicted,
            candidates=candidates,
            baselines=baselines,
            report=report,
            statistics=statistics,
            synthesis_seconds=synthesis_seconds,
            evaluation_seconds=evaluation_seconds,
        )


def _split_sources(
    source_list: Sequence[CandidateSource],
) -> Tuple[List[CandidateSource], List[CandidateSource]]:
    """(seed sources, shardable sources); reject streams we cannot partition.

    Only the stock :class:`BaselineSource` / :class:`SynthesisSource` can be
    re-instantiated per matrix inside a worker; a custom search stream has no
    matrix filter, so sharding it would silently change what the query means.
    """
    seeds: List[CandidateSource] = []
    shardable: List[CandidateSource] = []
    for source in source_list:
        if source.role == ROLE_SEED:
            seeds.append(source)
        elif source.role == ROLE_BASELINE:
            if type(source) is not BaselineSource or source.matrix_indices is not None:
                raise SearchError(
                    f"cannot shard baseline source {source.name!r}: only the "
                    "stock BaselineSource can be partitioned by matrix"
                )
            shardable.append(source)
        else:
            if type(source) is not SynthesisSource or source.matrix_indices is not None:
                raise SearchError(
                    f"cannot shard search source {source.name!r}: only the "
                    "stock SynthesisSource can be partitioned by matrix "
                    "(run custom sources with shards=1)"
                )
            shardable.append(source)
    return seeds, shardable


def _check_liveness(workers: Sequence, pending: set) -> None:
    """Raise if any still-pending shard's process died without a message."""
    for shard in list(pending):
        worker = workers[shard]
        if not worker.is_alive() and worker.exitcode not in (None, 0):
            raise SearchError(
                f"search shard {shard} died with exit code {worker.exitcode} "
                "before reporting results"
            )
