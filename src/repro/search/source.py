"""Candidate sources: lazy streams of strategy entries for the search driver.

The paper's planner searches a combinatorial space of parallelism placements
x synthesized reduction programs.  A :class:`CandidateSource` is one lazily
enumerated slice of that space: it yields :class:`StrategyEntry` objects —
(placement candidate, lowered program) pairs awaiting pricing — one at a
time, so a driver operating under a search budget can stop pulling and never
pay for the candidates it does not look at.

Three sources ship with the package:

* :class:`SynthesisSource` — the full P² pipeline
  (:func:`repro.synthesis.pipeline.iter_placement_candidates`), one placement
  synthesized per pull.  This is the stream the ranked plan is built from.
* :class:`BaselineSource` — the paper's comparison baselines (flat per-group
  ring AllReduce, Reduce-AllReduce-Broadcast, BlueConnect's
  ReduceScatter-AllReduce-AllGather) built on every placement.  They flow
  through the same pricing path as synthesized candidates, so every
  :class:`~repro.query.PlanOutcome` reports a speedup over each baseline at
  its best placement — not just over the default AllReduce.
* :class:`PinnedPlanSource` — replays strategies from a previous plan for
  the same query shape first, seeding the branch-and-bound incumbent before
  any synthesis happens.

A custom source is any object with ``name``, ``role`` and an
``entries(space, watermark, report)`` generator; pass it to
:meth:`repro.api.P2.plan` via ``sources=`` (see the README's "How search
scales").
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Optional, Protocol, Sequence, runtime_checkable

from repro.baselines.allreduce import default_all_reduce
from repro.baselines.blueconnect import blueconnect
from repro.baselines.hierarchical import reduce_allreduce_broadcast
from repro.cost.model import CostModel
from repro.errors import SynthesisError
from repro.hierarchy.parallelism import ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.query import PlanQuery
from repro.search.bounds import placement_lower_bound
from repro.synthesis.hierarchy import build_synthesis_hierarchy
from repro.synthesis.lowering import LoweredProgram
from repro.synthesis.pipeline import (
    PlacementCandidate,
    enumerate_search_matrices,
    iter_placement_candidates,
)
from repro.topology.topology import MachineTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard; see repro.api
    from repro.search.driver import SearchReport

logger = logging.getLogger(__name__)

__all__ = [
    "ROLE_SEARCH",
    "ROLE_BASELINE",
    "ROLE_SEED",
    "BASELINE_ALL_REDUCE",
    "BASELINE_HIERARCHICAL",
    "BASELINE_BLUECONNECT",
    "StrategyEntry",
    "SearchSpace",
    "Watermark",
    "CandidateSource",
    "SynthesisSource",
    "BaselineSource",
    "PinnedPlanSource",
    "default_sources",
]

# How the driver treats a source's entries:
#   search   — priced entries become ranked strategies and lower the incumbent.
#   baseline — priced as reference points (per-baseline speedups); never
#              ranked and never allowed to lower the incumbent, because a
#              baseline outside the query's program-size limit is not in the
#              search space and seeding from it would break losslessness.
#   seed     — priced to lower the incumbent early (pinned replays); never
#              ranked.  The caller asserts seeds lie inside the search space.
ROLE_SEARCH = "search"
ROLE_BASELINE = "baseline"
ROLE_SEED = "seed"

BASELINE_ALL_REDUCE = "all_reduce"
BASELINE_HIERARCHICAL = "hierarchical"
BASELINE_BLUECONNECT = "blueconnect"


@dataclass(frozen=True)
class StrategyEntry:
    """One (candidate, lowered program) pair awaiting cost evaluation.

    The entry stream is the contract between synthesis and ranking: the
    serial path, the process-pool path (:mod:`repro.service.parallel`) and
    the planning service all see the same entries in the same order, so a
    stable sort over the predicted times yields the identical ranking no
    matter who computed them.  ``tag`` carries the baseline name for entries
    produced by a :class:`BaselineSource` and is ``None`` elsewhere.
    """

    candidate: PlacementCandidate
    lowered: LoweredProgram
    mnemonic: str
    is_default_all_reduce: bool
    size: int = 1  # DSL program size (the baseline AllReduce counts as 1)
    tag: Optional[str] = None


@dataclass(frozen=True)
class SearchSpace:
    """The fixed inputs of one streaming search (everything sources consume)."""

    topology: MachineTopology
    cost_model: CostModel
    query: PlanQuery
    node_limit: int = 500_000
    validate: bool = True


class Watermark:
    """The shared branch-and-bound incumbent: the best exact time seen so far.

    Starts at infinity; the driver lowers it as in-space candidates are
    priced.  Sources may read it to skip work that provably cannot matter
    (e.g. :class:`SynthesisSource` skips synthesizing a whole placement when
    the placement's closed-form lower bound already exceeds it), and the
    chunked parallel path re-reads it between chunks so every worker prices
    against the freshest incumbent.
    """

    __slots__ = ("seconds",)

    def __init__(self, seconds: float = float("inf")) -> None:
        self.seconds = seconds

    def update(self, seconds: float) -> bool:
        """Lower the incumbent to ``seconds`` if better; True when it improved."""
        if seconds < self.seconds:
            self.seconds = seconds
            return True
        return False


@runtime_checkable
class CandidateSource(Protocol):
    """Anything that lazily yields strategy entries into the search driver.

    ``role`` must be one of :data:`ROLE_SEARCH`, :data:`ROLE_BASELINE` or
    :data:`ROLE_SEED` (see the module docstring for what each means to the
    driver).  ``entries`` must be lazy: work for an entry should happen when
    it is pulled, so budgets can cut enumeration short.
    """

    name: str
    role: str

    def entries(
        self, space: SearchSpace, watermark: Watermark, report: "SearchReport"
    ) -> Iterator[StrategyEntry]:
        """Yield entries for ``space``, lazily."""
        ...


@dataclass
class SynthesisSource:
    """The P² synthesis pipeline as a lazy entry stream.

    For each parallelism matrix it yields the default AllReduce entry first
    and then every synthesized program, in exactly the order the eager
    ``collect_strategy_entries(synthesize_all(...))`` spine produced — fully
    consuming this source reproduces the historical entry list bit for bit.
    When the incumbent watermark is finite, whole placements whose
    closed-form lower bound
    (:func:`repro.search.bounds.placement_lower_bound`) already exceeds it
    are skipped before their synthesis starts.

    Granularity follows the query: exhaustive queries synthesize one full
    placement per pull (the single-pass search), while budgeted queries use
    iterative-deepening passes
    (:meth:`repro.synthesis.synthesizer.Synthesizer.iter_synthesize_sizes`)
    so that abandoning the stream mid-placement also abandons the deepest —
    exponentially dominant — program sizes.  Both paths produce the same
    entries in the same ``(size, signature)`` order.

    ``matrix_indices`` restricts the stream to a subset of the canonical
    matrix enumeration (by index, in enumeration order) — the unit of work a
    shard claims in :mod:`repro.search.sharded`.  ``None`` (the default)
    streams every matrix.
    """

    name: str = "synthesis"
    matrix_indices: Optional[Sequence[int]] = None
    role: str = field(default=ROLE_SEARCH, init=False)

    def entries(
        self, space: SearchSpace, watermark: Watermark, report: "SearchReport"
    ) -> Iterator[StrategyEntry]:
        if space.query.has_search_budget:
            return self._entries_by_size(space, watermark, report)
        return self._entries_by_placement(space, watermark, report)

    # ------------------------------------------------------------------ #
    def _entries_by_placement(
        self, space: SearchSpace, watermark: Watermark, report: "SearchReport"
    ) -> Iterator[StrategyEntry]:
        query = space.query
        for candidate in iter_placement_candidates(
            space.topology.hierarchy,
            query.axes,
            query.request,
            max_program_size=query.max_program_size,
            node_limit=space.node_limit,
            validate=space.validate,
            max_matrices=query.max_matrices,
            matrix_indices=self.matrix_indices,
        ):
            if self._placement_pruned(candidate.placement, space, watermark, report):
                continue
            baseline = default_all_reduce(candidate.placement, query.request)
            yield StrategyEntry(candidate, baseline, "AR", True, 1)
            for program in candidate.programs:
                if program.is_default_all_reduce:
                    continue
                yield StrategyEntry(
                    candidate, program.lowered, program.mnemonic, False, program.size
                )

    def _entries_by_size(
        self, space: SearchSpace, watermark: Watermark, report: "SearchReport"
    ) -> Iterator[StrategyEntry]:
        import time

        from repro.synthesis.pipeline import lower_program_candidate
        from repro.synthesis.synthesizer import SynthesisResult, Synthesizer
        from repro.synthesis.pruning import SearchStatistics

        query = space.query
        matrices = enumerate_search_matrices(
            space.topology.hierarchy, query.axes, query.request, query.max_matrices
        )
        if self.matrix_indices is not None:
            wanted = set(self.matrix_indices)
            matrices = [m for i, m in enumerate(matrices) if i in wanted]
        synthesizer = Synthesizer(
            max_program_size=query.max_program_size, node_limit=space.node_limit
        )
        for matrix in matrices:
            placement = DevicePlacement(matrix)
            if self._placement_pruned(placement, space, watermark, report):
                continue
            synthesis_hierarchy = build_synthesis_hierarchy(matrix, query.request)
            statistics = SearchStatistics()
            result = SynthesisResult(
                hierarchy=synthesis_hierarchy,
                programs=[],
                statistics=statistics,
                elapsed_seconds=0.0,
                max_program_size=query.max_program_size,
            )
            candidate = PlacementCandidate(
                matrix=matrix,
                placement=placement,
                hierarchy=synthesis_hierarchy,
                synthesis=result,
                programs=[],
            )
            yield StrategyEntry(
                candidate, default_all_reduce(placement, query.request), "AR", True, 1
            )
            passes = synthesizer.iter_synthesize_sizes(
                synthesis_hierarchy, statistics=statistics
            )
            while True:
                start = time.perf_counter()
                item = next(passes, None)
                if item is None:
                    break
                _, batch = item
                entries: List[StrategyEntry] = []
                for synthesized in batch:
                    program = lower_program_candidate(
                        synthesized,
                        synthesis_hierarchy,
                        placement,
                        query.request,
                        space.validate,
                    )
                    result.programs.append(synthesized)
                    candidate.programs.append(program)
                    if program.is_default_all_reduce:
                        continue
                    entries.append(
                        StrategyEntry(
                            candidate,
                            program.lowered,
                            program.mnemonic,
                            False,
                            program.size,
                        )
                    )
                elapsed = time.perf_counter() - start
                candidate.synthesis_seconds += elapsed
                result.elapsed_seconds += elapsed
                for entry in entries:
                    yield entry

    @staticmethod
    def _placement_pruned(
        placement: DevicePlacement,
        space: SearchSpace,
        watermark: Watermark,
        report: "SearchReport",
    ) -> bool:
        if watermark.seconds == float("inf"):
            return False
        bound = placement_lower_bound(
            placement, space.query.request, space.topology, space.cost_model
        )
        if bound > watermark.seconds:
            report.placements_pruned += 1
            # isEnabledFor guard: rendering the matrix is far more expensive
            # than the pruning decision itself.
            if logger.isEnabledFor(logging.DEBUG):
                logger.debug(
                    "pruned placement %s: lower bound %.6fs > incumbent %.6fs",
                    placement.matrix.describe(),
                    bound,
                    watermark.seconds,
                )
            return True
        return False


@dataclass
class BaselineSource:
    """The paper's comparison baselines as first-class planning candidates.

    On every placement it yields the flat per-group ring AllReduce and — when
    the placement's synthesis hierarchy has a non-trivial local/global split —
    the Reduce-AllReduce-Broadcast and BlueConnect strategies (paper Figure
    10).  Entries are tagged with their baseline name so the driver can
    report each baseline's best-placement time on the
    :class:`~repro.api.OptimizationPlan`.

    ``matrix_indices`` restricts the stream to a subset of the canonical
    matrix enumeration, exactly like :class:`SynthesisSource`'s.
    """

    name: str = "baselines"
    matrix_indices: Optional[Sequence[int]] = None
    role: str = field(default=ROLE_BASELINE, init=False)

    def entries(
        self, space: SearchSpace, watermark: Watermark, report: "SearchReport"
    ) -> Iterator[StrategyEntry]:
        query = space.query
        matrices = enumerate_search_matrices(
            space.topology.hierarchy, query.axes, query.request, query.max_matrices
        )
        if self.matrix_indices is not None:
            wanted = set(self.matrix_indices)
            matrices = [m for i, m in enumerate(matrices) if i in wanted]
        for matrix in matrices:
            placement = DevicePlacement(matrix)
            hierarchy = build_synthesis_hierarchy(matrix, query.request)
            candidate = PlacementCandidate(
                matrix=matrix,
                placement=placement,
                hierarchy=hierarchy,
                synthesis=None,
                programs=[],
            )
            yield StrategyEntry(
                candidate,
                default_all_reduce(placement, query.request),
                "AR",
                True,
                1,
                tag=BASELINE_ALL_REDUCE,
            )
            try:
                hierarchical = reduce_allreduce_broadcast(hierarchy, placement)
                blue = blueconnect(hierarchy, placement)
            except SynthesisError:
                # No non-trivial local/global split on this placement: the
                # hierarchical baselines degenerate to the AllReduce above.
                continue
            yield StrategyEntry(
                candidate, hierarchical, "R-AR-B", False, 3, tag=BASELINE_HIERARCHICAL
            )
            yield StrategyEntry(
                candidate, blue, "RS-AR-AG", False, 3, tag=BASELINE_BLUECONNECT
            )


@dataclass
class PinnedPlanSource:
    """Replay known-good strategies first, seeding the incumbent.

    ``strategies`` usually comes from a previous
    :class:`~repro.api.OptimizationPlan` for the *same* query shape (pass a
    plan and the top ``top_k`` strategies are replayed).  Seeding lets
    branch-and-bound start pruning from the first synthesized candidate
    instead of warming up on the new stream.

    Losslessness contract: a seed may lower the incumbent, so it must be a
    strategy the current search space can also reach — the source skips any
    strategy whose device count does not match the topology, whose program
    size exceeds the query's ``max_program_size``, whose matrix was built
    for different parallelism axes, or (when the pinned plan's reduction
    request is known, as it is via :meth:`from_plan`) whose plan answered a
    different reduction.  A foreign-reduction seed would lower the incumbent
    to a time the current space cannot reach and make pruning lossy, so it
    is dropped wholesale rather than trusted.
    """

    strategies: Sequence = ()
    top_k: int = 1
    # The reduction the pinned strategies were planned for, when known; a
    # mismatch with the query's request disqualifies every seed.
    request: Optional[ReductionRequest] = None
    name: str = "pinned"
    role: str = field(default=ROLE_SEED, init=False)

    @classmethod
    def from_plan(cls, plan, top_k: int = 1) -> "PinnedPlanSource":
        """Pin the top ``top_k`` ranked strategies of an existing plan."""
        return cls(strategies=tuple(plan.strategies), top_k=top_k, request=plan.request)

    def entries(
        self, space: SearchSpace, watermark: Watermark, report: "SearchReport"
    ) -> Iterator[StrategyEntry]:
        query = space.query
        if self.request is not None and self.request != query.request:
            return
        yielded = 0
        for strategy in self.strategies:
            if yielded >= max(self.top_k, 0):
                break
            program = strategy.program
            if program.num_devices != space.topology.num_devices:
                continue
            size = strategy.size if strategy.size is not None else program.num_steps
            if size > query.max_program_size:
                continue
            if strategy.candidate.matrix.axes != query.axes:
                continue
            yielded += 1
            yield StrategyEntry(
                candidate=strategy.candidate,
                lowered=program,
                mnemonic=strategy.mnemonic,
                is_default_all_reduce=strategy.is_default_all_reduce,
                size=size,
            )


def default_sources() -> List[CandidateSource]:
    """The planner's default source list: baselines first, then synthesis.

    Baselines come first so their reference prices exist before any ranking
    decision; the synthesis stream then provides every ranked strategy.
    """
    return [BaselineSource(), SynthesisSource()]
