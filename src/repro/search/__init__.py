"""Streaming candidate-source search: lazy enumeration plus branch-and-bound.

The architectural seam between synthesis and ranking: candidate sources
(:mod:`repro.search.source`) lazily yield strategy entries, closed-form
lower bounds (:mod:`repro.search.bounds`) let the driver discard provably
non-optimal candidates, and the :class:`SearchDriver`
(:mod:`repro.search.driver`) prices the stream incrementally against an
incumbent watermark under an optional :class:`~repro.query.PlanQuery`
search budget.  ``repro.api.compute_plan`` is built on this package; new
ways of proposing candidates (sharded searches, multi-backend schedules,
replayed plans) plug in as additional :class:`CandidateSource` objects.
"""

from repro.search.bounds import (
    min_link_latency,
    placement_lower_bound,
    program_lower_bound,
)
from repro.search.driver import (
    CandidateEvaluator,
    SearchDriver,
    SearchReport,
    SearchResult,
    driver_chunk_size,
)
from repro.search.sharded import (
    PlacementLedger,
    ShardedSearchDriver,
    SharedWatermark,
)
from repro.search.source import (
    BASELINE_ALL_REDUCE,
    BASELINE_BLUECONNECT,
    BASELINE_HIERARCHICAL,
    ROLE_BASELINE,
    ROLE_SEARCH,
    ROLE_SEED,
    BaselineSource,
    CandidateSource,
    PinnedPlanSource,
    SearchSpace,
    StrategyEntry,
    SynthesisSource,
    Watermark,
    default_sources,
)

__all__ = [
    "BASELINE_ALL_REDUCE",
    "BASELINE_BLUECONNECT",
    "BASELINE_HIERARCHICAL",
    "ROLE_BASELINE",
    "ROLE_SEARCH",
    "ROLE_SEED",
    "BaselineSource",
    "CandidateEvaluator",
    "CandidateSource",
    "PinnedPlanSource",
    "PlacementLedger",
    "SearchDriver",
    "SearchReport",
    "SearchResult",
    "SearchSpace",
    "ShardedSearchDriver",
    "SharedWatermark",
    "StrategyEntry",
    "SynthesisSource",
    "Watermark",
    "default_sources",
    "driver_chunk_size",
    "min_link_latency",
    "placement_lower_bound",
    "program_lower_bound",
]
