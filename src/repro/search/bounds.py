"""Closed-form lower bounds for branch-and-bound candidate pruning.

Every bound here is *admissible*: it can never exceed the exact predicted
time of the candidate it bounds, under any payload, NCCL algorithm or cost
model the pipeline supports.  That is the whole correctness argument for
pruning — a candidate is skipped only when even its most optimistic time is
worse than an incumbent the search has already priced exactly — and it is
what the lossless property tests in ``tests/test_search_driver.py`` check.

Three bounds, from cheapest/weakest to tightest:

* :func:`program_lower_bound` — pure structure: every lowered step costs at
  least the launch overhead plus one hop on *some* link, so ``steps x
  (launch + min link latency)``.  Needs no semantics, contention analysis or
  profile; used for cold candidates whose profile is not compiled yet.
* :func:`~repro.cost.profile.SimulationProfile.lower_bound` — the compiled
  profile's per-step coefficients (latency and bytes-per-second maxima over
  its group equivalence classes); used whenever the simulator's profile
  cache already knows the candidate's signature.
* :func:`placement_lower_bound` — bounds *every* program on a placement at
  once: each reduction group's contributions must merge across that group's
  span boundary, so some step pays the launch overhead plus a hop on a link
  at least that coarse.  The synthesis source uses it to skip entire
  placements before paying for their program synthesis.
"""

from __future__ import annotations

from typing import Sequence

from repro.cost.model import CostModel
from repro.hierarchy.parallelism import ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.synthesis.lowering import LoweredProgram
from repro.topology.topology import MachineTopology

__all__ = [
    "min_link_latency",
    "program_lower_bound",
    "placement_lower_bound",
]


def min_link_latency(topology: MachineTopology) -> float:
    """The smallest hop latency any step could possibly pay on ``topology``."""
    latencies = [link.latency for link in topology.interconnects]
    if topology.host_link is not None:
        latencies.append(topology.host_link.latency)
    return min(latencies) if latencies else 0.0


def program_lower_bound(
    program: LoweredProgram, topology: MachineTopology, cost_model: CostModel
) -> float:
    """Structural bound: ``steps x (launch overhead + one cheapest hop)``.

    Sound because every lowered step runs at least one collective over a
    group of >= 2 devices (``LoweredStep`` enforces non-empty groups and the
    cost model rejects singletons), which pays the launch overhead plus at
    least one latency term on whichever link it bottlenecks on, and moves a
    non-negative volume.  A zero-step program is free.
    """
    if program.num_steps == 0:
        return 0.0
    return program.num_steps * (cost_model.launch_overhead + min_link_latency(topology))


def _coarsest_hop_latency(
    topology: MachineTopology, span_level: int
) -> float:
    """Cheapest latency of any link at least as coarse as ``span_level``.

    A step whose group spans level ``span_level`` uses the level's link, but
    a program may merge the same contributions inside an even coarser group
    (a smaller level index); the admissible latency is therefore the minimum
    over all levels up to and including ``span_level``.
    """
    latencies = [
        topology.interconnect_for_level(level).latency
        for level in range(span_level + 1)
    ]
    return min(latencies) if latencies else 0.0


def placement_lower_bound(
    placement: DevicePlacement,
    request: ReductionRequest,
    topology: MachineTopology,
    cost_model: CostModel,
) -> float:
    """Bound on *any* reduction program over ``placement``'s groups.

    For each reduction group of >= 2 devices, its contributions must merge
    inside at least one collective group that spans the reduction group's
    span level (contributions living in different level instances can only
    combine in a step whose group contains devices of both), so some step
    costs at least ``launch + hop latency at that span``.  Steps may serve
    several reduction groups at once, so the program bound is the *maximum*
    over groups, not the sum.  All-singleton reductions need no
    communication and bound to 0.0.
    """
    bound = 0.0
    for group in placement.reduction_groups(request):
        if len(group) < 2:
            continue
        span = topology.span_level(_as_sequence(group))
        group_bound = cost_model.launch_overhead + _coarsest_hop_latency(topology, span)
        bound = max(bound, group_bound)
    return bound


def _as_sequence(group) -> Sequence[int]:
    return group if isinstance(group, (list, tuple)) else tuple(group)
