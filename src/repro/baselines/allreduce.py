"""The default strategy: one AllReduce per reduction group.

This is what the paper's baseline ("the default all-reduce implementation")
does: a single NCCL AllReduce whose communicator contains exactly the devices
of each reduction group, regardless of where those devices sit in the
hierarchy.
"""

from __future__ import annotations


from repro.dsl.forms import InsideGroup
from repro.dsl.program import ReductionInstruction, ReductionProgram
from repro.hierarchy.parallelism import ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.semantics.collectives import Collective
from repro.synthesis.lowering import LoweredProgram, LoweredStep

__all__ = ["default_all_reduce", "default_all_reduce_program"]


def default_all_reduce_program() -> ReductionProgram:
    """The DSL form of the default strategy: AllReduce inside the root group."""
    return ReductionProgram.of(
        ReductionInstruction(0, InsideGroup(), Collective.ALL_REDUCE)
    )


def default_all_reduce(
    placement: DevicePlacement,
    request: ReductionRequest,
    label: str = "AllReduce (default)",
) -> LoweredProgram:
    """Lower the default strategy directly from the placement's reduction groups.

    Reduction groups of a single device need no communication and are simply
    dropped; if every group is a singleton the returned program has no steps.
    """
    groups = [tuple(g) for g in placement.reduction_groups(request) if len(g) >= 2]
    if not groups:
        return LoweredProgram(
            num_devices=placement.num_devices, steps=(), source=None, label=label
        )
    step = LoweredStep(collective=Collective.ALL_REDUCE, groups=tuple(groups))
    return LoweredProgram(
        num_devices=placement.num_devices,
        steps=(step,),
        source=default_all_reduce_program(),
        label=label,
    )
