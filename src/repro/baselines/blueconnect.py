"""ReduceScatter → AllReduce → AllGather (paper Figure 10(ii), BlueConnect).

Each local group first reduce-scatters, leaving every member with ``1/g`` of
the reduced payload; members at the same position of each local group then
all-reduce across the slow interconnect (moving only the small shards); and a
final local all-gather reassembles the full payload everywhere.  Proposed by
BlueConnect (Cho et al., 2019) and, in the paper's experiments, the most
frequently optimal strategy for cross-node reductions.
"""

from __future__ import annotations

from typing import Optional

from repro.dsl.forms import InsideGroup, Parallel
from repro.dsl.program import ReductionInstruction, ReductionProgram
from repro.hierarchy.placement import DevicePlacement
from repro.semantics.collectives import Collective
from repro.synthesis.hierarchy import SynthesisHierarchy
from repro.synthesis.lowering import LoweredProgram, lower_program
from repro.baselines.hierarchical import pick_split_level

__all__ = ["blueconnect"]


def blueconnect(
    hierarchy: SynthesisHierarchy,
    placement: DevicePlacement,
    split_level: Optional[int] = None,
    label: str = "ReduceScatter-AllReduce-AllGather",
) -> LoweredProgram:
    """Build and lower the BlueConnect strategy over ``hierarchy``.

    ``split_level`` picks the local-group level exactly as in
    :func:`repro.baselines.hierarchical.reduce_allreduce_broadcast`.
    """
    split = pick_split_level(hierarchy) if split_level is None else split_level
    program = ReductionProgram.of(
        ReductionInstruction(split, InsideGroup(), Collective.REDUCE_SCATTER),
        ReductionInstruction(split, Parallel(0), Collective.ALL_REDUCE),
        ReductionInstruction(split, InsideGroup(), Collective.ALL_GATHER),
    )
    return lower_program(program, hierarchy, placement, label=label)
