"""Reduce → AllReduce → Broadcast (paper Figure 10(i)).

Data is first reduced to one root per *local* group (e.g. per node), the roots
all-reduce with each other across the slow interconnect, and the result is
broadcast back inside each local group.  Used by Goyal et al. (2018) and
Jia et al. (2018) and, in the paper's experiments, occasionally the optimal
strategy when local groups are small.
"""

from __future__ import annotations

from typing import Optional

from repro.dsl.forms import InsideGroup, Master
from repro.dsl.program import ReductionInstruction, ReductionProgram
from repro.errors import SynthesisError
from repro.hierarchy.placement import DevicePlacement
from repro.semantics.collectives import Collective
from repro.synthesis.hierarchy import SynthesisHierarchy
from repro.synthesis.lowering import LoweredProgram, lower_program

__all__ = ["reduce_allreduce_broadcast", "pick_split_level"]


def pick_split_level(hierarchy: SynthesisHierarchy) -> int:
    """Choose the local/global boundary for hierarchical baselines.

    Returns the shallowest level ``s >= 1`` such that both the levels above
    (``1..s``, the "global" part) and the levels below (``s+1..``, the
    "local" part) contain real fan-out.  Raises when the hierarchy has no such
    split (e.g. the whole reduction fits into one level), in which case the
    hierarchical baselines degenerate to a plain AllReduce and are not
    interesting.
    """
    radices = hierarchy.radices
    for split in range(1, len(radices)):
        above = 1
        for r in radices[1 : split + 1]:
            above *= r
        below = 1
        for r in radices[split + 1 :]:
            below *= r
        if above >= 2 and below >= 2:
            return split
    raise SynthesisError(
        f"hierarchy {hierarchy.describe()} has no non-trivial local/global split"
    )


def reduce_allreduce_broadcast(
    hierarchy: SynthesisHierarchy,
    placement: DevicePlacement,
    split_level: Optional[int] = None,
    label: str = "Reduce-AllReduce-Broadcast",
) -> LoweredProgram:
    """Build and lower the Reduce → AllReduce → Broadcast strategy.

    ``split_level`` is the synthesis-hierarchy level whose instances form the
    local groups; by default the shallowest non-trivial split is used, which
    on the paper's two-level systems means "local = one node".
    """
    split = pick_split_level(hierarchy) if split_level is None else split_level
    program = ReductionProgram.of(
        ReductionInstruction(split, InsideGroup(), Collective.REDUCE),
        ReductionInstruction(split, Master(0), Collective.ALL_REDUCE),
        ReductionInstruction(split, InsideGroup(), Collective.BROADCAST),
    )
    return lower_program(program, hierarchy, placement, label=label)
