"""Baseline reduction strategies.

Three well-known strategies serve as comparison points throughout the
evaluation; all of them live inside the synthesis space of P² (the paper
notes this explicitly for the two hierarchical ones in §4.2):

* :mod:`repro.baselines.allreduce` — the default: a single AllReduce within
  each reduction group (what XLA emits today).
* :mod:`repro.baselines.hierarchical` — Reduce → AllReduce → Broadcast
  (paper Figure 10(i); Goyal et al. 2018, Jia et al. 2018).
* :mod:`repro.baselines.blueconnect` — ReduceScatter → AllReduce → AllGather
  (paper Figure 10(ii); BlueConnect, Cho et al. 2019).
"""

from repro.baselines.allreduce import default_all_reduce, default_all_reduce_program
from repro.baselines.hierarchical import reduce_allreduce_broadcast
from repro.baselines.blueconnect import blueconnect

__all__ = [
    "default_all_reduce",
    "default_all_reduce_program",
    "reduce_allreduce_broadcast",
    "blueconnect",
]
