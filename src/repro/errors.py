"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can install a single ``except`` clause around synthesis or simulation
pipelines.  The subclasses mirror the major subsystems: hierarchy/placement,
collective semantics, the reduction DSL, synthesis, topology modelling, cost
modelling and the runtime executor.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class HierarchyError(ReproError):
    """Raised for malformed system hierarchies or parallelism axes."""


class PlacementError(HierarchyError):
    """Raised when a parallelism matrix or placement request is infeasible."""


class SemanticsError(ReproError):
    """Raised when a collective's Hoare-triple precondition is violated."""


class InvalidCollectiveError(SemanticsError):
    """Raised when a collective step is semantically invalid for the given states."""


class DSLError(ReproError):
    """Raised for malformed reduction instructions or programs."""


class SynthesisError(ReproError):
    """Raised when synthesis cannot proceed (bad goal, bad hierarchy, ...)."""


class LoweringError(SynthesisError):
    """Raised when a synthesized program cannot be lowered to physical devices."""


class TopologyError(ReproError):
    """Raised for inconsistent hardware topology specifications."""


class CostModelError(ReproError):
    """Raised when the cost model is asked to price an unsupported operation."""


class RuntimeExecutionError(ReproError):
    """Raised when the in-memory runtime fails to execute a lowered program."""


class VerificationError(RuntimeExecutionError):
    """Raised when executing a program produces numerically wrong reductions."""


class EvaluationError(ReproError):
    """Raised by the experiment harness for malformed experiment configs."""


class QueryError(EvaluationError):
    """Raised for malformed planning queries (:class:`repro.query.PlanQuery`)."""


class SearchError(ReproError):
    """Raised by the streaming/sharded search for un-shardable source
    configurations or worker-process failures (:mod:`repro.search`)."""


class ServiceError(ReproError):
    """Raised by the planning service for malformed requests or cache state."""


class ServeError(ServiceError):
    """Raised by the daemon wire protocol for malformed or refused messages."""


class LoadgenError(ReproError):
    """Raised by the synthetic-traffic harness for bad profiles or configs."""
