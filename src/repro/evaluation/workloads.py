"""End-to-end training-step models.

The paper motivates P² with training workloads (§1: a 15% ResNet-50
data-parallel speedup on 4 nodes of 8 V100s) and with Megatron-style sharded
transformers whose layers reduce over more than one axis.  This module
provides small analytic models of such workloads so the examples and the E10
benchmark can translate communication-time improvements into step-time
improvements.

A :class:`TrainingWorkload` is a per-device compute time plus one or more
:class:`ReductionPhase` entries (payload + reduction axes + how much of the
communication can be overlapped with compute).  Given communication times for
each phase (from the simulator or the testbed), :meth:`TrainingWorkload.step_time`
returns the end-to-end step time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import EvaluationError

__all__ = [
    "ReductionPhase",
    "TrainingWorkload",
    "resnet50_data_parallel",
    "megatron_sharded_layer",
]

MB = 1e6


@dataclass(frozen=True)
class ReductionPhase:
    """One reduction the training step must perform."""

    name: str
    bytes_per_device: int
    reduction_axes: Tuple[int, ...]
    overlap_fraction: float = 0.0  # fraction of the communication hidden behind compute

    def __post_init__(self) -> None:
        if self.bytes_per_device <= 0:
            raise EvaluationError(f"phase {self.name!r} needs a positive payload")
        if not 0.0 <= self.overlap_fraction < 1.0:
            raise EvaluationError("overlap_fraction must be in [0, 1)")
        if not self.reduction_axes:
            raise EvaluationError(f"phase {self.name!r} needs at least one reduction axis")

    def exposed_seconds(self, communication_seconds: float) -> float:
        """Communication time that is not hidden behind compute."""
        return communication_seconds * (1.0 - self.overlap_fraction)


@dataclass(frozen=True)
class TrainingWorkload:
    """A training step: compute plus a set of reductions."""

    name: str
    compute_seconds: float
    parallelism_axes: Tuple[int, ...]
    phases: Tuple[ReductionPhase, ...]

    def __post_init__(self) -> None:
        if self.compute_seconds <= 0:
            raise EvaluationError("compute_seconds must be positive")
        if not self.phases:
            raise EvaluationError("a workload needs at least one reduction phase")
        for phase in self.phases:
            for axis in phase.reduction_axes:
                if not 0 <= axis < len(self.parallelism_axes):
                    raise EvaluationError(
                        f"phase {phase.name!r} reduces over axis {axis}, which does not exist"
                    )

    def step_time(self, communication_seconds: Dict[str, float]) -> float:
        """End-to-end step time given per-phase communication times."""
        total = self.compute_seconds
        for phase in self.phases:
            if phase.name not in communication_seconds:
                raise EvaluationError(f"missing communication time for phase {phase.name!r}")
            total += phase.exposed_seconds(communication_seconds[phase.name])
        return total

    def improvement(
        self,
        baseline_communication: Dict[str, float],
        optimized_communication: Dict[str, float],
    ) -> float:
        """Relative step-time improvement: ``1 - optimized / baseline``."""
        baseline = self.step_time(baseline_communication)
        optimized = self.step_time(optimized_communication)
        if baseline <= 0:
            raise EvaluationError("baseline step time must be positive")
        return 1.0 - optimized / baseline

    def communication_fraction(self, communication_seconds: Dict[str, float]) -> float:
        """Fraction of the step spent in exposed communication."""
        step = self.step_time(communication_seconds)
        exposed = step - self.compute_seconds
        return exposed / step if step > 0 else 0.0


# --------------------------------------------------------------------------- #
# Concrete workloads used by the examples and benchmarks
# --------------------------------------------------------------------------- #
RESNET50_GRADIENT_BYTES = int(25.6e6 * 4)  # 25.6M float32 parameters -> ~102 MB


def resnet50_data_parallel(
    num_replicas: int,
    compute_seconds: float = 0.30,
    overlap_fraction: float = 0.0,
) -> TrainingWorkload:
    """ResNet-50 data-parallel training: one gradient all-reduce per step.

    ``compute_seconds`` is the per-step forward+backward time per replica
    (≈0.3 s for a 256-image local batch on a V100); the gradient payload is
    the full 25.6M-parameter model in float32.
    """
    if num_replicas < 2:
        raise EvaluationError("data parallelism needs at least 2 replicas")
    return TrainingWorkload(
        name="resnet50-data-parallel",
        compute_seconds=compute_seconds,
        parallelism_axes=(num_replicas,),
        phases=(
            ReductionPhase(
                name="gradients",
                bytes_per_device=RESNET50_GRADIENT_BYTES,
                reduction_axes=(0,),
                overlap_fraction=overlap_fraction,
            ),
        ),
    )


def megatron_sharded_layer(
    data_parallel: int,
    model_parallel: int,
    hidden_size: int = 12288,
    sequence_length: int = 2048,
    micro_batch: int = 1,
    compute_seconds: float = 0.08,
) -> TrainingWorkload:
    """A Megatron-style sharded transformer layer with two reductions per step.

    The forward/backward activations are all-reduced over the model-parallel
    axis (axis 1) and the gradients over the data-parallel axis (axis 0) —
    exactly the "multiple parallelism axes, multiple reduction axes" setting
    the paper's placement study targets.
    """
    if data_parallel < 2 or model_parallel < 2:
        raise EvaluationError("both parallel axes need size >= 2")
    activation_bytes = hidden_size * sequence_length * micro_batch * 2  # bf16 activations
    gradient_bytes = int(12 * hidden_size * hidden_size / model_parallel * 4)
    return TrainingWorkload(
        name="megatron-sharded-layer",
        compute_seconds=compute_seconds,
        parallelism_axes=(data_parallel, model_parallel),
        phases=(
            ReductionPhase(
                name="activations",
                bytes_per_device=activation_bytes,
                reduction_axes=(1,),
                overlap_fraction=0.0,
            ),
            ReductionPhase(
                name="gradients",
                bytes_per_device=gradient_bytes,
                reduction_axes=(0,),
                overlap_fraction=0.5,
            ),
        ),
    )
