"""Figure 11: per-program measured vs. simulated times.

For one experiment configuration, the figure lists every (matrix, program)
candidate in increasing order of measured time and plots the measured and
simulated value side by side, coloured by parallelism matrix.  We reproduce
the underlying data series (and render them as text); a plotting front end can
consume :class:`Figure11Series` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import EvaluationError
from repro.evaluation.config import ExperimentConfig
from repro.evaluation.runner import SweepResult, SweepRunner
from repro.utils.tabulate import format_table

__all__ = ["Figure11Point", "Figure11Series", "build_figure11"]


@dataclass(frozen=True)
class Figure11Point:
    """One program of the figure: its matrix, label and the two times."""

    index: int
    matrix: str
    program: str
    measured_seconds: float
    simulated_seconds: float

    @property
    def relative_error(self) -> float:
        if self.measured_seconds == 0:
            return 0.0
        return abs(self.simulated_seconds - self.measured_seconds) / self.measured_seconds


@dataclass(frozen=True)
class Figure11Series:
    """The full data series behind one of the Figure 11 panels."""

    config: ExperimentConfig
    points: Tuple[Figure11Point, ...]
    synthesis_seconds: float
    simulation_seconds: float

    @property
    def num_points(self) -> int:
        return len(self.points)

    @property
    def mean_relative_error(self) -> float:
        if not self.points:
            return 0.0
        return sum(p.relative_error for p in self.points) / len(self.points)

    def spearman_correlation(self) -> float:
        """Rank correlation between measured and simulated orderings."""
        n = len(self.points)
        if n < 2:
            return 1.0
        measured_rank = _ranks([p.measured_seconds for p in self.points])
        simulated_rank = _ranks([p.simulated_seconds for p in self.points])
        d2 = sum((a - b) ** 2 for a, b in zip(measured_rank, simulated_rank))
        return 1.0 - 6.0 * d2 / (n * (n * n - 1))

    def render(self, max_rows: Optional[int] = None) -> str:
        rows = [
            [p.index, p.matrix, p.program, p.measured_seconds, p.simulated_seconds,
             f"{p.relative_error * 100:.0f}%"]
            for p in self.points[: max_rows or len(self.points)]
        ]
        table = format_table(
            ["#", "matrix", "program", "measured (s)", "simulated (s)", "rel err"],
            rows,
            title=f"Figure 11 series for {self.config.describe()}",
            float_fmt="{:.3f}",
        )
        footer = (
            f"\n{self.num_points} programs; mean relative error "
            f"{self.mean_relative_error * 100:.1f}%; Spearman rank correlation "
            f"{self.spearman_correlation():.3f}"
        )
        return table + footer


def _ranks(values: List[float]) -> List[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    for rank, index in enumerate(order):
        ranks[index] = float(rank)
    return ranks


def build_figure11(
    config: ExperimentConfig,
    runner: Optional[SweepRunner] = None,
    result: Optional[SweepResult] = None,
    max_programs: Optional[int] = None,
) -> Figure11Series:
    """Build the Figure 11 series for ``config`` (running the sweep if needed)."""
    if result is None:
        runner = runner or SweepRunner()
        result = runner.run(config)
    points: List[Figure11Point] = []
    for matrix, program in result.iter_programs():
        if program.measured_seconds is None:
            raise EvaluationError("Figure 11 requires measured times")
        points.append(
            Figure11Point(
                index=0,
                matrix=matrix.matrix_description,
                program=program.mnemonic,
                measured_seconds=program.measured_seconds,
                simulated_seconds=program.predicted_seconds,
            )
        )
    points.sort(key=lambda p: p.measured_seconds)
    if max_programs is not None:
        points = points[:max_programs]
    points = [
        Figure11Point(
            index=i,
            matrix=p.matrix,
            program=p.program,
            measured_seconds=p.measured_seconds,
            simulated_seconds=p.simulated_seconds,
        )
        for i, p in enumerate(points)
    ]
    return Figure11Series(
        config=config,
        points=tuple(points),
        synthesis_seconds=result.synthesis_seconds,
        simulation_seconds=result.prediction_seconds,
    )
