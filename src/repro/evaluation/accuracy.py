"""Predictor accuracy (paper Table 5).

The paper asks: if we rank all (parallelism matrix, program) candidates of an
experiment by the simulator's prediction, does the truly fastest candidate
(by measurement) appear among the top k predictions?  Table 5 reports the
fraction of experiments for which the answer is yes, for several k, per GPU
system and overall.

Here "measurement" is the flow-level testbed simulator, which uses a
different model than the analytic predictor (see
:mod:`repro.runtime.events`), so the comparison is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.evaluation.runner import SweepResult

__all__ = ["AccuracyReport", "top_k_accuracy", "accuracy_table", "rank_of_measured_best"]

DEFAULT_TOP_KS: Tuple[int, ...] = (1, 2, 3, 5, 6, 10)


def _candidate_times(result: SweepResult) -> List[Tuple[float, float]]:
    """All (predicted, measured) pairs of one experiment; requires measurements."""
    pairs: List[Tuple[float, float]] = []
    for _, program in result.iter_programs():
        if program.measured_seconds is None:
            raise EvaluationError(
                "accuracy evaluation needs measured times; run the sweep with "
                "measure_programs=True"
            )
        pairs.append((program.predicted_seconds, program.measured_seconds))
    return pairs


def rank_of_measured_best(result: SweepResult) -> Optional[int]:
    """1-based rank (by prediction) of the measured-fastest candidate.

    Returns ``None`` for degenerate experiments with fewer than two candidates.
    """
    pairs = _candidate_times(result)
    if len(pairs) < 2:
        return None
    best_index = min(range(len(pairs)), key=lambda i: pairs[i][1])
    best_prediction = pairs[best_index][0]
    # Rank = how many candidates the simulator considers at least as good.
    rank = sum(1 for predicted, _ in pairs if predicted <= best_prediction)
    return max(rank, 1)


@dataclass(frozen=True)
class AccuracyReport:
    """Top-k accuracy aggregated over a set of experiments."""

    num_experiments: int
    top_k: Dict[int, float]
    ranks: Tuple[int, ...]

    def accuracy(self, k: int) -> float:
        if k not in self.top_k:
            raise EvaluationError(f"top-{k} accuracy was not computed")
        return self.top_k[k]

    def describe(self) -> str:
        parts = [f"top-{k}: {value * 100:.1f}%" for k, value in sorted(self.top_k.items())]
        return f"{self.num_experiments} experiments; " + ", ".join(parts)


def top_k_accuracy(
    results: Sequence[SweepResult], top_ks: Sequence[int] = DEFAULT_TOP_KS
) -> AccuracyReport:
    """Compute top-k accuracy over ``results`` for each k in ``top_ks``."""
    ranks: List[int] = []
    for result in results:
        rank = rank_of_measured_best(result)
        if rank is not None:
            ranks.append(rank)
    if not ranks:
        raise EvaluationError("no experiment had enough candidates for accuracy evaluation")
    accuracies = {
        k: sum(1 for rank in ranks if rank <= k) / len(ranks) for k in top_ks
    }
    return AccuracyReport(num_experiments=len(ranks), top_k=accuracies, ranks=tuple(ranks))


def accuracy_table(
    results_by_system: Dict[str, Sequence[SweepResult]],
    top_ks: Sequence[int] = DEFAULT_TOP_KS,
) -> List[List[object]]:
    """Rows of Table 5: one row per system plus a ``Total`` row."""
    rows: List[List[object]] = []
    all_results: List[SweepResult] = []
    for system, results in results_by_system.items():
        all_results.extend(results)
        report = top_k_accuracy(results, top_ks)
        rows.append([system] + [report.accuracy(k) * 100 for k in top_ks])
    total = top_k_accuracy(all_results, top_ks)
    rows.append(["Total"] + [total.accuracy(k) * 100 for k in top_ks])
    return rows
