"""Sweep runner: drives scenarios through any :class:`~repro.query.Planner`.

For every scenario the runner

1. builds the scenario's :class:`~repro.query.PlanQuery` and sends it to a
   planner — a bare :class:`repro.api.P2`, or a
   :class:`~repro.service.engine.PlanningService` whose cache and worker
   pool amortize repeated and concurrent sweeps,
2. regroups the resulting ranked plan into per-matrix program results,
3. (optionally) measures every program with the flow-level testbed
   simulator, in ranked order (the order is part of the determinism
   contract: a cache-warm re-run measures in exactly the same order and
   therefore reproduces the same noise stream), and
4. records the :class:`~repro.query.PlanOutcome` provenance — cache tier,
   fingerprint, synthesis/evaluation split — on the
   :class:`SweepResult`.

:meth:`SweepRunner.run_stream` streams scenarios to a JSONL file with one
flushed record per scenario, so long sweeps checkpoint as they go and can be
resumed (``resume=True`` skips scenarios whose record — matched by name and
query — is already on disk).

Everything downstream — the paper tables, the accuracy report and the Figure
11 series — is computed from the resulting :class:`SweepResult` records, so
running a scenario once is enough to regenerate all artefacts that use it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.cost.model import CostModel
from repro.errors import ReproError
from repro.evaluation.config import ExperimentConfig
from repro.evaluation.scenarios import Scenario
from repro.hierarchy.matrix import ParallelismMatrix
from repro.obs.recorder import get_recorder
from repro.query import PlanOutcome, Planner
from repro.runtime.events import TestbedSimulator
from repro.runtime.noise import NoiseModel
from repro.topology.topology import MachineTopology

__all__ = ["ProgramResult", "MatrixResult", "SweepResult", "SweepRunner"]


@dataclass(frozen=True)
class ProgramResult:
    """Predicted and measured time of one lowered program on one placement."""

    label: str
    mnemonic: str
    size: int
    num_steps: int
    predicted_seconds: float
    measured_seconds: Optional[float] = None
    is_default_all_reduce: bool = False

    @property
    def evaluation_seconds(self) -> float:
        """Measured time when available, otherwise the prediction."""
        return self.measured_seconds if self.measured_seconds is not None else self.predicted_seconds


@dataclass
class MatrixResult:
    """All program results for one parallelism matrix."""

    matrix: ParallelismMatrix
    programs: List[ProgramResult]
    synthesis_seconds: float

    @property
    def matrix_description(self) -> str:
        return self.matrix.describe()

    @property
    def num_programs(self) -> int:
        return len(self.programs)

    @property
    def all_reduce(self) -> Optional[ProgramResult]:
        for program in self.programs:
            if program.is_default_all_reduce:
                return program
        return None

    def best_by_prediction(self) -> Optional[ProgramResult]:
        return min(self.programs, key=lambda p: p.predicted_seconds, default=None)

    def best_by_measurement(self) -> Optional[ProgramResult]:
        measured = [p for p in self.programs if p.measured_seconds is not None]
        return min(measured, key=lambda p: p.measured_seconds, default=None)

    def best(self) -> Optional[ProgramResult]:
        """Best program by measurement when available, else by prediction."""
        return self.best_by_measurement() or self.best_by_prediction()

    def speedup_over_all_reduce(self) -> Optional[float]:
        baseline = self.all_reduce
        best = self.best()
        if baseline is None or best is None:
            return None
        best_time = best.evaluation_seconds
        if best_time <= 0:
            return None
        return baseline.evaluation_seconds / best_time

    def programs_outperforming_all_reduce(self, threshold: float = 1.0) -> int:
        baseline = self.all_reduce
        if baseline is None:
            return 0
        base = baseline.evaluation_seconds
        return sum(
            1
            for p in self.programs
            if not p.is_default_all_reduce and p.evaluation_seconds * threshold < base
        )


@dataclass
class SweepResult:
    """Results for every matrix of one scenario, plus planning provenance.

    ``synthesis_seconds`` / ``prediction_seconds`` come straight from the
    :class:`~repro.query.PlanOutcome` that answered the scenario's query
    (both are 0.0 on a cache hit); ``cache_tier`` / ``fingerprint`` /
    ``n_workers`` record how the plan was produced, and
    ``measurement_seconds`` is the testbed wall clock spent by this run.
    ``profile_hits`` / ``profile_misses`` count how many candidate
    simulations were answered by re-pricing a cached
    :class:`~repro.cost.profile.SimulationProfile`: because the runner keeps
    one planner (hence one simulator and one profile cache) per topology,
    later rungs of a payload ladder should be almost all hits.
    """

    config: ExperimentConfig
    matrices: List[MatrixResult]
    synthesis_seconds: float
    prediction_seconds: float
    measurement_seconds: float
    cache_tier: Optional[str] = None  # "memory" | "disk" | None (cold)
    fingerprint: Optional[str] = None
    planner_seconds: float = 0.0
    n_workers: int = 1
    profile_hits: int = 0
    profile_misses: int = 0
    # Search-driver and synthesizer provenance (None on cache hits, where no
    # search ran) plus the plan's per-baseline speedups — all straight from
    # the PlanOutcome, already JSON-ready.
    search: Optional[Dict] = None
    synthesis_stats: Optional[Dict] = None
    baseline_speedups: Optional[Dict] = None
    # The request-trace id of the PlanOutcome that answered this scenario
    # (None when telemetry was disabled): lets a --trace-out timeline be
    # joined against sweep records.
    trace_id: Optional[str] = None

    @property
    def cache_hit(self) -> bool:
        return self.cache_tier is not None

    @property
    def num_matrices(self) -> int:
        return len(self.matrices)

    @property
    def total_programs(self) -> int:
        return sum(m.num_programs for m in self.matrices)

    def iter_programs(self) -> Iterator[Tuple[MatrixResult, ProgramResult]]:
        for matrix in self.matrices:
            for program in matrix.programs:
                yield matrix, program

    def best_matrix(self) -> Optional[MatrixResult]:
        """The matrix whose best program is fastest overall."""
        scored = [
            (m.best().evaluation_seconds, i, m)
            for i, m in enumerate(self.matrices)
            if m.best() is not None
        ]
        if not scored:
            return None
        return min(scored)[2]

    def provenance(self) -> Dict[str, object]:
        """The planning/measurement provenance as one JSON-ready dict."""
        return {
            "fingerprint": self.fingerprint,
            "cache_tier": self.cache_tier,
            "cache_hit": self.cache_hit,
            "synthesis_seconds": self.synthesis_seconds,
            "evaluation_seconds": self.prediction_seconds,
            "planner_seconds": self.planner_seconds,
            "measurement_seconds": self.measurement_seconds,
            "n_workers": self.n_workers,
            "profile_hits": self.profile_hits,
            "profile_misses": self.profile_misses,
            "search": self.search,
            "synthesis_stats": self.synthesis_stats,
            "trace_id": self.trace_id,
        }

    def describe(self) -> str:
        source = self.cache_tier or "cold"
        return (
            f"{self.config.describe()}: {self.num_matrices} matrices, "
            f"{self.total_programs} programs "
            f"(plan [{source}]: synthesis {self.synthesis_seconds:.2f}s + "
            f"evaluation {self.prediction_seconds:.2f}s, "
            f"measurement {self.measurement_seconds:.2f}s)"
        )


PlannerFactory = Callable[[MachineTopology], Planner]


@dataclass
class SweepRunner:
    """Runs scenarios by routing their queries through a :class:`Planner`.

    Parameters
    ----------
    planner_factory:
        Builds the planner for each distinct topology of a sweep.  ``None``
        uses a bare :class:`repro.api.P2` (direct computation).  Pass a
        factory returning a :class:`~repro.service.engine.PlanningService`
        to make sweeps cache-amortized (re-runs and duplicate shapes become
        fingerprint lookups) and parallel (the service's worker pool).
        Planners are built once per topology and reused across scenarios —
        which also reuses one :class:`~repro.cost.simulator.ProgramSimulator`
        (hence one compiled-profile cache) across a scenario's payload
        ladder, so only the first rung pays semantics/contention analysis;
        the resulting ``profile_hits`` land in each result's provenance.
        :meth:`close` releases any planners that need releasing.
    measure_programs / measurement_runs / noise_seed:
        Testbed measurement of every ranked program (the planner only
        predicts).  Measurement happens in ranked order so that cold and
        cache-warm runs consume the seeded noise stream identically.
    validate_lowering / node_limit:
        Honoured by the default (direct P²) planner; a custom
        ``planner_factory`` applies its own pipeline settings.
    """

    cost_model: CostModel = field(default_factory=CostModel)
    noise_seed: int = 0
    measurement_runs: int = 3
    measure_programs: bool = True
    validate_lowering: bool = True
    node_limit: int = 500_000
    planner_factory: Optional[PlannerFactory] = None
    _planners: Dict[str, Planner] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    # Planner management
    # ------------------------------------------------------------------ #
    def planner_for(self, scenario: Scenario) -> Planner:
        """The (cached) planner answering this scenario's topology."""
        key = scenario.topology_key()
        if key not in self._planners:
            topology = scenario.topology()
            if self.planner_factory is not None:
                self._planners[key] = self.planner_factory(topology)
            else:
                from repro.api import P2

                self._planners[key] = P2(
                    topology,
                    cost_model=self.cost_model,
                    validate_lowering=self.validate_lowering,
                    node_limit=self.node_limit,
                )
        return self._planners[key]

    def close(self) -> None:
        """Release every planner that has a ``close`` (service worker pools)."""
        for planner in self._planners.values():
            close = getattr(planner, "close", None)
            if callable(close):
                close()
        self._planners.clear()

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def run(self, config_or_scenario: Union[ExperimentConfig, Scenario]) -> SweepResult:
        """Run one scenario (or bare config) end to end."""
        scenario = (
            config_or_scenario
            if isinstance(config_or_scenario, Scenario)
            else Scenario(config=config_or_scenario)
        )
        planner = self.planner_for(scenario)
        with get_recorder().span("sweep.scenario", scenario=scenario.name):
            outcome = planner.plan(scenario.query())
            return self.result_from_outcome(scenario, outcome)

    def run_many(
        self, configs: Sequence[Union[ExperimentConfig, Scenario]]
    ) -> List[SweepResult]:
        scenarios = [
            config if isinstance(config, Scenario) else Scenario(config=config)
            for config in configs
        ]
        ladders = self._payload_ladders(scenarios)
        results = []
        for scenario, ladder in zip(scenarios, ladders):
            self._prime_ladder(scenario, ladder)
            results.append(self.run(scenario))
        return results

    # ------------------------------------------------------------------ #
    # Payload-ladder priming
    # ------------------------------------------------------------------ #
    def _payload_ladders(
        self, scenarios: Sequence[Scenario]
    ) -> List[Optional[Tuple[float, ...]]]:
        """Per-scenario payload ladders for batch pricing.

        Scenarios that differ *only* in ``bytes_per_device`` (same topology,
        same canonical query otherwise) form a ladder group — the shape the
        ``payload-ladder`` and ``appendix`` presets sweep.  Each scenario in
        a group of two or more distinct payloads gets the group's full
        ladder, which :meth:`_prime_ladder` installs on the planner so one
        vectorized batch per compiled signature answers every rung.
        """
        group_payloads: Dict[Tuple[str, str], List[float]] = {}
        keyed: List[Tuple[Tuple[str, str], Optional[float]]] = []
        for scenario in scenarios:
            query = scenario.query().to_dict()
            payload = query.pop("bytes_per_device", None)
            key = (scenario.topology_key(), json.dumps(query, sort_keys=True))
            value = float(payload) if payload is not None else None
            keyed.append((key, value))
            bucket = group_payloads.setdefault(key, [])
            if value is not None and value not in bucket:
                bucket.append(value)
        return [
            tuple(group_payloads[key]) if len(group_payloads[key]) >= 2 else None
            for key, _ in keyed
        ]

    def _prime_ladder(
        self, scenario: Scenario, ladder: Optional[Tuple[float, ...]]
    ) -> None:
        planner = self.planner_for(scenario)
        setter = getattr(planner, "set_payload_ladder", None)
        if callable(setter):
            setter(ladder)

    def run_stream(
        self,
        scenarios: Sequence[Scenario],
        out_path: Optional[Union[str, Path]] = None,
        resume: bool = False,
        on_record: Optional[Callable[[Dict], None]] = None,
    ) -> List[SweepResult]:
        """Run scenarios, streaming one JSONL record per scenario.

        Each record (see :func:`repro.analysis.serialization.result_to_record`)
        is appended and flushed as soon as its scenario finishes, so the file
        is a valid checkpoint at every moment.  With ``resume=True``,
        scenarios whose record is already present — matched by scenario name
        *and* canonical query, so a changed grid recomputes — are loaded from
        the file instead of recomputed.  Results are returned in scenario
        order either way, and ``on_record`` sees every record (restored or
        fresh) in that order.
        """
        from repro.analysis.serialization import (
            iter_jsonl_records,
            result_from_record,
            result_to_record,
        )

        done: Dict[str, Dict] = {}
        path = Path(out_path) if out_path is not None else None
        if path is not None and resume and path.exists():
            for record in iter_jsonl_records(path):
                done[record.get("scenario", "")] = record  # last record wins

        results: List[SweepResult] = []
        ladders = dict(zip(map(id, scenarios), self._payload_ladders(scenarios)))
        handle = None
        try:
            if path is not None:
                path.parent.mkdir(parents=True, exist_ok=True)
                handle = open(path, "a" if resume else "w")
                if resume and handle.tell() > 0:
                    # A torn trailing line (killed mid-write) must not swallow
                    # the first superseding record we append after it.
                    with open(path, "rb") as tail:
                        tail.seek(-1, 2)
                        if tail.read(1) != b"\n":
                            handle.write("\n")
            for scenario in scenarios:
                query_dict = scenario.query().to_dict()
                record = done.get(scenario.name)
                restored = None
                if record is not None and record.get("query") == query_dict:
                    try:
                        restored = result_from_record(record)
                    except (ReproError, KeyError, TypeError, ValueError):
                        restored = None  # stale/foreign record: recompute
                if restored is not None:
                    results.append(restored)
                else:
                    self._prime_ladder(scenario, ladders[id(scenario)])
                    result = self.run(scenario)
                    record = result_to_record(result, query=query_dict)
                    results.append(result)
                    if handle is not None:
                        handle.write(json.dumps(record, sort_keys=True) + "\n")
                        handle.flush()
                if on_record is not None:
                    on_record(record)
        finally:
            if handle is not None:
                handle.close()
        return results

    # ------------------------------------------------------------------ #
    # Outcome -> SweepResult
    # ------------------------------------------------------------------ #
    def result_from_outcome(
        self, scenario: Scenario, outcome: PlanOutcome
    ) -> SweepResult:
        """Regroup a ranked :class:`PlanOutcome` into per-matrix results.

        Matrices keep the plan's candidate order; programs within a matrix
        keep the ranking order.  Measurement consumes the shared seeded
        noise stream in ranking order, which is identical for a cold and a
        cache-warm plan — so warm re-runs reproduce cold measurements
        exactly.
        """
        config = scenario.config
        plan = outcome.plan
        recorder = get_recorder()
        measure_start = time.perf_counter()
        measured_by_strategy: List[Optional[float]] = []
        if self.measure_programs:
            with recorder.span(
                "sweep.measure",
                scenario=scenario.name,
                strategies=len(plan.strategies),
            ):
                testbed = TestbedSimulator(
                    scenario.topology(), NoiseModel(seed=self.noise_seed)
                )
                for strategy in plan.strategies:
                    if strategy.program.num_steps == 0:
                        measured_by_strategy.append(0.0)
                        continue
                    measured_by_strategy.append(
                        testbed.measure(
                            strategy.program,
                            config.bytes_per_device,
                            config.algorithm,
                            num_runs=self.measurement_runs,
                        ).total_seconds
                    )
        else:
            measured_by_strategy = [
                0.0 if strategy.program.num_steps == 0 else None
                for strategy in plan.strategies
            ]
        measurement_seconds = time.perf_counter() - measure_start

        programs_by_candidate: Dict[int, List[ProgramResult]] = {}
        for strategy, measured in zip(plan.strategies, measured_by_strategy):
            label = (
                "AllReduce (default)"
                if strategy.is_default_all_reduce
                else strategy.program.label
            )
            size = (
                strategy.size
                if strategy.size is not None
                else strategy.program.num_steps
            )
            programs_by_candidate.setdefault(id(strategy.candidate), []).append(
                ProgramResult(
                    label=label,
                    mnemonic=strategy.mnemonic,
                    size=size,
                    num_steps=strategy.program.num_steps,
                    predicted_seconds=strategy.predicted_seconds,
                    measured_seconds=measured,
                    is_default_all_reduce=strategy.is_default_all_reduce,
                )
            )

        matrices = [
            MatrixResult(
                matrix=candidate.matrix,
                programs=programs_by_candidate.get(id(candidate), []),
                synthesis_seconds=candidate.synthesis_seconds,
            )
            for candidate in plan.candidates
        ]
        return SweepResult(
            config=config,
            matrices=matrices,
            synthesis_seconds=outcome.synthesis_seconds,
            prediction_seconds=outcome.evaluation_seconds,
            measurement_seconds=measurement_seconds,
            cache_tier=outcome.cache_tier,
            fingerprint=outcome.fingerprint,
            planner_seconds=outcome.total_seconds,
            n_workers=outcome.n_workers,
            profile_hits=outcome.profile_hits,
            profile_misses=outcome.profile_misses,
            search=outcome.search,
            synthesis_stats=outcome.synthesis_stats,
            baseline_speedups=outcome.baseline_speedups(),
            trace_id=outcome.trace_id,
        )
