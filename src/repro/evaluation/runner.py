"""Sweep runner: executes one experiment configuration end to end.

For a configuration the runner

1. enumerates every parallelism matrix (placement synthesis),
2. synthesizes and lowers every reduction program per matrix,
3. adds the default AllReduce baseline,
4. predicts every program's time with the analytic simulator, and
5. (optionally) measures every program with the flow-level testbed simulator.

Everything downstream — the paper tables, the accuracy report and the Figure
11 series — is computed from the resulting :class:`SweepResult` records, so
running a configuration once is enough to regenerate all artefacts that use
it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.baselines.allreduce import default_all_reduce
from repro.cost.model import CostModel
from repro.cost.simulator import ProgramSimulator
from repro.errors import EvaluationError
from repro.evaluation.config import ExperimentConfig
from repro.hierarchy.matrix import ParallelismMatrix
from repro.runtime.events import TestbedSimulator
from repro.runtime.noise import NoiseModel
from repro.synthesis.pipeline import PlacementCandidate, synthesize_all

__all__ = ["ProgramResult", "MatrixResult", "SweepResult", "SweepRunner"]


@dataclass(frozen=True)
class ProgramResult:
    """Predicted and measured time of one lowered program on one placement."""

    label: str
    mnemonic: str
    size: int
    num_steps: int
    predicted_seconds: float
    measured_seconds: Optional[float] = None
    is_default_all_reduce: bool = False

    @property
    def evaluation_seconds(self) -> float:
        """Measured time when available, otherwise the prediction."""
        return self.measured_seconds if self.measured_seconds is not None else self.predicted_seconds


@dataclass
class MatrixResult:
    """All program results for one parallelism matrix."""

    matrix: ParallelismMatrix
    programs: List[ProgramResult]
    synthesis_seconds: float

    @property
    def matrix_description(self) -> str:
        return self.matrix.describe()

    @property
    def num_programs(self) -> int:
        return len(self.programs)

    @property
    def all_reduce(self) -> Optional[ProgramResult]:
        for program in self.programs:
            if program.is_default_all_reduce:
                return program
        return None

    def best_by_prediction(self) -> Optional[ProgramResult]:
        return min(self.programs, key=lambda p: p.predicted_seconds, default=None)

    def best_by_measurement(self) -> Optional[ProgramResult]:
        measured = [p for p in self.programs if p.measured_seconds is not None]
        return min(measured, key=lambda p: p.measured_seconds, default=None)

    def best(self) -> Optional[ProgramResult]:
        """Best program by measurement when available, else by prediction."""
        return self.best_by_measurement() or self.best_by_prediction()

    def speedup_over_all_reduce(self) -> Optional[float]:
        baseline = self.all_reduce
        best = self.best()
        if baseline is None or best is None:
            return None
        best_time = best.evaluation_seconds
        if best_time <= 0:
            return None
        return baseline.evaluation_seconds / best_time

    def programs_outperforming_all_reduce(self, threshold: float = 1.0) -> int:
        baseline = self.all_reduce
        if baseline is None:
            return 0
        base = baseline.evaluation_seconds
        return sum(
            1
            for p in self.programs
            if not p.is_default_all_reduce and p.evaluation_seconds * threshold < base
        )


@dataclass
class SweepResult:
    """Results for every matrix of one experiment configuration."""

    config: ExperimentConfig
    matrices: List[MatrixResult]
    synthesis_seconds: float
    prediction_seconds: float
    measurement_seconds: float

    @property
    def num_matrices(self) -> int:
        return len(self.matrices)

    @property
    def total_programs(self) -> int:
        return sum(m.num_programs for m in self.matrices)

    def iter_programs(self) -> Iterator[Tuple[MatrixResult, ProgramResult]]:
        for matrix in self.matrices:
            for program in matrix.programs:
                yield matrix, program

    def best_matrix(self) -> Optional[MatrixResult]:
        """The matrix whose best program is fastest overall."""
        scored = [
            (m.best().evaluation_seconds, i, m)
            for i, m in enumerate(self.matrices)
            if m.best() is not None
        ]
        if not scored:
            return None
        return min(scored)[2]

    def describe(self) -> str:
        return (
            f"{self.config.describe()}: {self.num_matrices} matrices, "
            f"{self.total_programs} programs "
            f"(synthesis {self.synthesis_seconds:.2f}s, prediction {self.prediction_seconds:.2f}s, "
            f"measurement {self.measurement_seconds:.2f}s)"
        )


@dataclass
class SweepRunner:
    """Runs experiment configurations and caches nothing (results are returned)."""

    cost_model: CostModel = field(default_factory=CostModel)
    noise_seed: int = 0
    measurement_runs: int = 3
    measure_programs: bool = True
    validate_lowering: bool = True
    node_limit: int = 500_000

    # ------------------------------------------------------------------ #
    def run(self, config: ExperimentConfig) -> SweepResult:
        """Run one configuration end to end."""
        topology = config.topology()
        axes = config.parallelism()
        request = config.request()
        bytes_per_device = config.bytes_per_device

        synthesis_start = time.perf_counter()
        candidates = synthesize_all(
            topology.hierarchy,
            axes,
            request,
            max_program_size=config.max_program_size,
            node_limit=self.node_limit,
            validate=self.validate_lowering,
        )
        synthesis_seconds = time.perf_counter() - synthesis_start

        simulator = ProgramSimulator(topology, self.cost_model)
        testbed = TestbedSimulator(topology, NoiseModel(seed=self.noise_seed))

        prediction_seconds = 0.0
        measurement_seconds = 0.0
        matrices: List[MatrixResult] = []
        for candidate in candidates:
            matrix_result, predict_dt, measure_dt = self._evaluate_candidate(
                candidate, config, simulator, testbed, bytes_per_device
            )
            prediction_seconds += predict_dt
            measurement_seconds += measure_dt
            matrices.append(matrix_result)

        return SweepResult(
            config=config,
            matrices=matrices,
            synthesis_seconds=synthesis_seconds,
            prediction_seconds=prediction_seconds,
            measurement_seconds=measurement_seconds,
        )

    def run_many(self, configs: List[ExperimentConfig]) -> List[SweepResult]:
        return [self.run(config) for config in configs]

    # ------------------------------------------------------------------ #
    def _evaluate_candidate(
        self,
        candidate: PlacementCandidate,
        config: ExperimentConfig,
        simulator: ProgramSimulator,
        testbed: TestbedSimulator,
        bytes_per_device: int,
    ) -> Tuple[MatrixResult, float, float]:
        request = config.request()
        algorithm = config.algorithm
        programs: List[ProgramResult] = []

        # The default baseline, lowered straight from the reduction groups.
        baseline = default_all_reduce(candidate.placement, request)
        entries = [("AllReduce (default)", "AR", 1, baseline, True)]
        for program in candidate.programs:
            if program.is_default_all_reduce:
                # Identical to the baseline entry above; skip the duplicate.
                continue
            entries.append(
                (program.lowered.label, program.mnemonic, program.size, program.lowered, False)
            )

        predict_dt = 0.0
        measure_dt = 0.0
        for label, mnemonic, size, lowered, is_default in entries:
            if lowered.num_steps == 0:
                # Nothing to communicate (singleton reduction groups).
                programs.append(
                    ProgramResult(label, mnemonic, size, 0, 0.0, 0.0, is_default)
                )
                continue
            start = time.perf_counter()
            predicted = simulator.simulate(lowered, bytes_per_device, algorithm).total_seconds
            predict_dt += time.perf_counter() - start
            measured: Optional[float] = None
            if self.measure_programs:
                start = time.perf_counter()
                measured = testbed.measure(
                    lowered, bytes_per_device, algorithm, num_runs=self.measurement_runs
                ).total_seconds
                measure_dt += time.perf_counter() - start
            programs.append(
                ProgramResult(
                    label=label,
                    mnemonic=mnemonic,
                    size=size,
                    num_steps=lowered.num_steps,
                    predicted_seconds=predicted,
                    measured_seconds=measured,
                    is_default_all_reduce=is_default,
                )
            )

        matrix_result = MatrixResult(
            matrix=candidate.matrix,
            programs=programs,
            synthesis_seconds=candidate.synthesis_seconds,
        )
        return matrix_result, predict_dt, measure_dt
