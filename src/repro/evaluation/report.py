"""Plain-text reporting of sweep results.

The benchmark harness and the CLI both want readable summaries of a
:class:`~repro.evaluation.runner.SweepResult`; this module renders them so the
formatting lives in one place.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.evaluation.runner import MatrixResult, SweepResult
from repro.utils.tabulate import format_table

__all__ = [
    "render_matrix_result",
    "render_sweep_result",
    "render_sweep_summary",
    "render_provenance_summary",
]


def render_matrix_result(matrix: MatrixResult, max_programs: Optional[int] = 10) -> str:
    """One matrix: its programs sorted by evaluation time."""
    programs = sorted(matrix.programs, key=lambda p: p.evaluation_seconds)
    rows = []
    for program in programs[: max_programs or len(programs)]:
        rows.append(
            [
                program.mnemonic,
                program.size,
                program.predicted_seconds,
                program.measured_seconds,
                "yes" if program.is_default_all_reduce else "",
            ]
        )
    table = format_table(
        ["program", "size", "predicted (s)", "measured (s)", "default"],
        rows,
        title=f"matrix {matrix.matrix_description} ({matrix.num_programs} programs)",
        float_fmt="{:.4f}",
    )
    speedup = matrix.speedup_over_all_reduce()
    if speedup is not None:
        table += f"\nbest speedup over AllReduce: {speedup:.2f}x"
    return table


def render_sweep_result(result: SweepResult, max_programs: Optional[int] = 10) -> str:
    """Full report for one configuration."""
    sections: List[str] = [result.describe(), ""]
    for matrix in result.matrices:
        sections.append(render_matrix_result(matrix, max_programs))
        sections.append("")
    return "\n".join(sections)


def render_sweep_summary(results: Sequence[SweepResult], snapshot=None) -> str:
    """One line per configuration: best matrix, best program and speedup.

    ``snapshot`` is forwarded to :func:`render_provenance_summary` for
    optional latency-percentile lines.
    """
    rows = []
    for result in results:
        best_matrix = result.best_matrix()
        if best_matrix is None:
            continue
        best = best_matrix.best()
        baseline = best_matrix.all_reduce
        rows.append(
            [
                result.config.name,
                result.config.algorithm.value,
                best_matrix.matrix_description,
                baseline.evaluation_seconds if baseline else None,
                best.evaluation_seconds if best else None,
                best.mnemonic if best else "-",
                round(best_matrix.speedup_over_all_reduce() or 1.0, 2),
            ]
        )
    table = format_table(
        ["config", "algo", "best matrix", "AllReduce (s)", "optimal (s)", "program", "speedup"],
        rows,
        title="Sweep summary",
        float_fmt="{:.3f}",
    )
    return table + "\n" + render_provenance_summary(results, snapshot=snapshot)


def render_provenance_summary(results: Sequence[SweepResult], snapshot=None) -> str:
    """Cache-hit ratio and wall-clock split, straight from PlanOutcome provenance.

    The timings are the ones each scenario's :class:`~repro.query.PlanOutcome`
    recorded (zero for cache hits), not re-derived sums over program results,
    so the line faithfully reports what the planner actually spent.

    ``snapshot`` (an optional :class:`~repro.obs.RecorderSnapshot`) adds
    per-span latency percentiles — p50/p99 over ``sweep.scenario`` and
    ``service.plan`` spans — when the sweep ran with telemetry enabled.
    """
    if not results:
        return "no scenarios ran"
    hits = sum(1 for r in results if r.cache_hit)
    synthesis = sum(r.synthesis_seconds for r in results)
    evaluation = sum(r.prediction_seconds for r in results)
    measurement = sum(r.measurement_seconds for r in results)
    profile_hits = sum(r.profile_hits for r in results)
    profile_misses = sum(r.profile_misses for r in results)
    ratio = hits / len(results)
    line = (
        f"plan cache: {hits}/{len(results)} hits ({ratio * 100:.0f}%); "
        f"simulation profiles: {profile_hits} repriced / {profile_misses} compiled; "
        f"wall clock: synthesis {synthesis:.2f}s + evaluation {evaluation:.2f}s "
        f"+ measurement {measurement:.2f}s"
    )
    searches = [r.search for r in results if r.search]
    if searches:
        considered = sum(s.get("considered", 0) for s in searches)
        bound_rejected = sum(s.get("bound_rejected", 0) for s in searches)
        placements_pruned = sum(s.get("placements_pruned", 0) for s in searches)
        stopped = sum(
            1 for s in searches if s.get("budget_stopped") or s.get("time_stopped")
        )
        line += (
            f"\nsearch: {considered} candidates considered, "
            f"{bound_rejected} bound-rejected, "
            f"{placements_pruned} placements pruned, "
            f"{stopped}/{len(searches)} scenario(s) budget-stopped"
        )
        incumbent_times = [
            s["time_to_incumbent_s"]
            for s in searches
            if s.get("time_to_incumbent_s") is not None
        ]
        if incumbent_times:
            seeded = sum(1 for s in searches if s.get("seeded_incumbent"))
            mean_incumbent = sum(incumbent_times) / len(incumbent_times)
            line += (
                f"\nincumbent: mean time-to-incumbent "
                f"{mean_incumbent * 1e3:.1f} ms over "
                f"{len(incumbent_times)} search(es), "
                f"{seeded} seeded from history"
            )
    if snapshot is not None:
        for name in ("sweep.scenario", "service.plan", "plan", "search.run"):
            histogram = snapshot.histograms.get(f"span.{name}")
            if histogram is None or histogram.count == 0:
                continue
            line += (
                f"\n{name}: n={histogram.count} "
                f"p50={histogram.percentile(0.50):.4f}s "
                f"p99={histogram.percentile(0.99):.4f}s "
                f"max={histogram.max:.4f}s"
            )
    return line
