"""Scenario grids: the declarative front end of the sweep engine.

The paper's headline claim is breadth — synthesized plans beat hand-written
baselines across many topologies, payload sizes and workloads — so the
evaluation layer needs a way to *name* large families of experiments and
expand them into :class:`~repro.query.PlanQuery` streams that any
:class:`~repro.query.Planner` can answer.

* A :class:`Scenario` is one concrete experiment: an
  :class:`~repro.evaluation.config.ExperimentConfig` (topology builder,
  parallelism shape, reduction workload, algorithm, payload) plus optional
  search limits.  ``scenario.query()`` is the :class:`PlanQuery` it denotes.
* A :class:`ScenarioGrid` expands axis products — topology builders
  (system × node count) × parallelism shapes × reduction workloads ×
  payload scales × NCCL algorithms — into a deterministic scenario list,
  with ``include``/``exclude`` fnmatch filters over scenario names.
* :func:`preset` returns the named scenario lists the CLI and CI use:
  ``smoke`` (seconds, prediction-only), ``paper-table2`` (the paper's
  configuration table: the Table 3 placement shapes plus the Table 4
  synthesis rows), ``gcp-scaleout`` (node-count scaling on both GCP
  systems), ``payload-ladder`` (payload sensitivity on one shape) and
  ``appendix`` (the full appendix sweep).

Invalid combinations (a shape whose product does not match the device
count, a reduction axis a shape does not have) are *skipped*, not errors:
a grid deliberately over-approximates and keeps only what type-checks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cost.nccl import NCCLAlgorithm
from repro.errors import EvaluationError
from repro.evaluation.config import (
    ExperimentConfig,
    SystemKind,
    _axis_shapes_for,
    appendix_configs,
    table3_configs,
    table4_configs,
)
from repro.query import PlanQuery
from repro.topology.topology import MachineTopology

__all__ = [
    "Scenario",
    "ScenarioGrid",
    "scenarios_from_configs",
    "preset",
    "preset_names",
    "PRESETS",
]


@dataclass(frozen=True)
class Scenario:
    """One concrete experiment of a sweep: a config plus search limits.

    The scenario *is* the unit of sweep provenance: its ``name`` keys JSONL
    checkpoints, and :meth:`query` is the exact :class:`PlanQuery` the sweep
    runner sends to a :class:`~repro.query.Planner`.
    """

    config: ExperimentConfig
    max_matrices: Optional[int] = None
    # Optional search budget (PlanQuery.max_candidates / time_budget_s):
    # switches the scenario's query onto the streaming branch-and-bound
    # driver.  ``repro-cli sweep --max-candidates/--time-budget`` set these
    # uniformly across a sweep.
    max_candidates: Optional[int] = None
    time_budget_s: Optional[float] = None
    # Shard width for cold-path planning (PlanQuery.shards, fingerprint
    # neutral); ``repro-cli sweep --shards`` sets it uniformly.
    shards: int = 1

    @property
    def name(self) -> str:
        return self.config.name

    def topology_key(self) -> str:
        """Groups scenarios that share one topology (one planner each)."""
        return f"{self.config.system.value}-{self.config.num_nodes}n"

    def topology(self) -> MachineTopology:
        return self.config.topology()

    def query(self) -> PlanQuery:
        """The :class:`PlanQuery` this scenario denotes."""
        return PlanQuery(
            axes=self.config.parallelism(),
            request=self.config.request(),
            bytes_per_device=self.config.bytes_per_device,
            algorithm=self.config.algorithm,
            max_matrices=self.max_matrices,
            max_program_size=self.config.max_program_size,
            max_candidates=self.max_candidates,
            time_budget_s=self.time_budget_s,
            shards=self.shards,
        )

    def describe(self) -> str:
        return self.config.describe()


def _format_scale(scale: float) -> str:
    """A stable, filename-safe rendering of a payload scale (1.0 -> "1")."""
    text = f"{scale:g}"
    return text.replace(".", "p")


@dataclass(frozen=True)
class ScenarioGrid:
    """An axis-product of scenarios, expanded deterministically.

    Axes
    ----
    systems × node_counts:
        The topology builders (:meth:`SystemKind.build`).
    shapes:
        Parallelism shapes.  Explicit tuples apply only to topologies whose
        device count matches their product; the string ``"auto"`` derives
        the paper's §4 factorization protocol per topology
        (:func:`repro.evaluation.config._axis_shapes_for`, which pairs each
        shape with its reduction axes); ``"flat"`` uses the single-axis
        shape ``(num_devices,)``.
    workloads:
        Reduction-axis tuples tried against every shape (out-of-range axes
        are skipped).  Ignored for ``"auto"`` shapes, which carry their own.
    payload_scales × algorithms:
        Payload fractions of the paper's payload and NCCL algorithms.

    ``include``/``exclude`` are fnmatch patterns over scenario names: a
    non-empty ``include`` keeps only matching scenarios, ``exclude`` then
    drops matches.  Expansion order is the nested axis order above and is
    part of the grid's contract (checkpoint files rely on it being stable).
    """

    name: str = "grid"
    systems: Tuple[SystemKind, ...] = (SystemKind.A100,)
    node_counts: Tuple[int, ...] = (2,)
    shapes: Union[str, Tuple[Tuple[int, ...], ...]] = "auto"
    workloads: Tuple[Tuple[int, ...], ...] = ((0,),)
    payload_scales: Tuple[float, ...] = (1.0,)
    algorithms: Tuple[NCCLAlgorithm, ...] = (NCCLAlgorithm.RING,)
    max_program_size: int = 5
    max_matrices: Optional[int] = None
    include: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.shapes, str) and self.shapes not in ("auto", "flat"):
            raise EvaluationError(
                f"shapes must be 'auto', 'flat' or explicit tuples, got {self.shapes!r}"
            )
        if not self.systems or not self.node_counts:
            raise EvaluationError("a grid needs at least one system and node count")
        if not self.payload_scales or not self.algorithms:
            raise EvaluationError("a grid needs at least one payload scale and algorithm")

    # ------------------------------------------------------------------ #
    def _shape_pairs(
        self, system: SystemKind, nodes: int
    ) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        """(shape, reduction axes) pairs for one topology, invalid ones dropped."""
        total = nodes * system.gpus_per_node
        if self.shapes == "auto":
            return _axis_shapes_for(total)
        if self.shapes == "flat":
            shapes: List[Tuple[int, ...]] = [(total,)]
        else:
            shapes = [
                shape
                for shape in self.shapes
                if _product(shape) == total
            ]
        pairs: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
        for shape in shapes:
            for workload in self.workloads:
                if all(0 <= axis < len(shape) for axis in workload):
                    pairs.append((shape, tuple(workload)))
        return pairs

    def _matches(self, name: str) -> bool:
        if self.include and not any(fnmatch(name, p) for p in self.include):
            return False
        return not any(fnmatch(name, p) for p in self.exclude)

    def expand(self) -> List[Scenario]:
        """Every scenario of the grid, in the deterministic axis order."""
        scenarios: List[Scenario] = []
        for system in self.systems:
            for nodes in self.node_counts:
                for shape, workload in self._shape_pairs(system, nodes):
                    for scale in self.payload_scales:
                        for algorithm in self.algorithms:
                            name = (
                                f"{self.name}-{system.value}-{nodes}n-"
                                f"{'x'.join(str(a) for a in shape)}-"
                                f"r{''.join(str(a) for a in workload)}-"
                                f"s{_format_scale(scale)}-{algorithm.value}"
                            )
                            if not self._matches(name):
                                continue
                            config = ExperimentConfig(
                                name=name,
                                system=system,
                                num_nodes=nodes,
                                axes=shape,
                                reduction_axes=workload,
                                algorithm=algorithm,
                                payload_scale=scale,
                                max_program_size=self.max_program_size,
                            )
                            scenarios.append(
                                Scenario(config=config, max_matrices=self.max_matrices)
                            )
        return scenarios

    def queries(self) -> Iterator[Tuple[Scenario, PlanQuery]]:
        """Stream (scenario, PlanQuery) pairs — the currency a Planner consumes."""
        for scenario in self.expand():
            yield scenario, scenario.query()

    def count(self) -> int:
        return len(self.expand())

    def __len__(self) -> int:  # pragma: no cover - convenience alias
        return self.count()

    def scaled(self, payload_scale: float) -> "ScenarioGrid":
        """A copy with every payload scale replaced by ``payload_scale``."""
        return replace(self, payload_scales=(payload_scale,))

    # ------------------------------------------------------------------ #
    # Serialization — ``repro-cli sweep --grid FILE.json`` reads this form.
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "systems": [s.value for s in self.systems],
            "node_counts": list(self.node_counts),
            "shapes": (
                self.shapes
                if isinstance(self.shapes, str)
                else [list(shape) for shape in self.shapes]
            ),
            "workloads": [list(w) for w in self.workloads],
            "payload_scales": list(self.payload_scales),
            "algorithms": [a.value for a in self.algorithms],
            "max_program_size": self.max_program_size,
            "max_matrices": self.max_matrices,
            "include": list(self.include),
            "exclude": list(self.exclude),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioGrid":
        if not isinstance(data, Mapping):
            raise EvaluationError(
                f"a scenario grid must be a JSON object, got {type(data).__name__}"
            )
        try:
            shapes = data.get("shapes", "auto")
            if not isinstance(shapes, str):
                shapes = tuple(tuple(int(a) for a in shape) for shape in shapes)
            return cls(
                name=data.get("name", "grid"),
                systems=tuple(SystemKind(s) for s in data.get("systems", ["a100"])),
                node_counts=tuple(int(n) for n in data.get("node_counts", [2])),
                shapes=shapes,
                workloads=tuple(
                    tuple(int(a) for a in w) for w in data.get("workloads", [[0]])
                ),
                payload_scales=tuple(
                    float(s) for s in data.get("payload_scales", [1.0])
                ),
                algorithms=tuple(
                    NCCLAlgorithm(a) for a in data.get("algorithms", ["ring"])
                ),
                max_program_size=int(data.get("max_program_size", 5)),
                max_matrices=(
                    None
                    if data.get("max_matrices") is None
                    else int(data["max_matrices"])
                ),
                include=_patterns(data.get("include", ())),
                exclude=_patterns(data.get("exclude", ())),
            )
        except EvaluationError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise EvaluationError(f"bad scenario grid dict: {error!r}")

    @classmethod
    def from_json_file(cls, path: Union[str, Path]) -> "ScenarioGrid":
        try:
            data = json.loads(Path(path).read_text())
        except json.JSONDecodeError as error:
            raise EvaluationError(f"{path}: not valid JSON: {error}")
        return cls.from_dict(data)


def _patterns(value: Any) -> Tuple[str, ...]:
    """Normalize a filter field: a bare string is one pattern, not characters."""
    if isinstance(value, str):
        return (value,)
    return tuple(str(pattern) for pattern in value)


def _product(values: Sequence[int]) -> int:
    total = 1
    for value in values:
        total *= value
    return total


def scenarios_from_configs(
    configs: Sequence[ExperimentConfig], max_matrices: Optional[int] = None
) -> List[Scenario]:
    """Wrap existing :class:`ExperimentConfig` lists (the paper tables) as scenarios."""
    seen: Dict[str, ExperimentConfig] = {}
    scenarios: List[Scenario] = []
    for config in configs:
        if config.name in seen:
            if seen[config.name] != config:
                raise EvaluationError(
                    f"two different configs share the name {config.name!r}"
                )
            continue  # exact duplicate: keep the first occurrence only
        seen[config.name] = config
        scenarios.append(Scenario(config=config, max_matrices=max_matrices))
    return scenarios


# --------------------------------------------------------------------------- #
# Named presets
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _Preset:
    """A named scenario family plus the runner settings it is meant for."""

    name: str
    description: str
    default_payload_scale: float
    measure_programs: bool = True
    measurement_runs: int = 3
    builder: Any = field(default=None, compare=False)

    def scenarios(self, payload_scale: Optional[float] = None) -> List[Scenario]:
        scale = payload_scale if payload_scale is not None else self.default_payload_scale
        return self.builder(scale)


def _smoke_scenarios(scale: float) -> List[Scenario]:
    grid = ScenarioGrid(
        name="smoke",
        systems=(SystemKind.A100,),
        node_counts=(2,),
        shapes=((8, 4), (32,)),
        workloads=((0,), (1,)),
        payload_scales=(scale,),
        algorithms=(NCCLAlgorithm.RING,),
        max_program_size=3,
    )
    return grid.expand()


def _paper_table2_scenarios(scale: float) -> List[Scenario]:
    # The paper's configuration table (its Table 2) is the union of the
    # placement shapes evaluated in Table 3 and the synthesis rows of Table 4.
    return scenarios_from_configs(table3_configs(scale) + table4_configs(scale))


def _gcp_scaleout_scenarios(scale: float) -> List[Scenario]:
    grid = ScenarioGrid(
        name="gcp-scaleout",
        systems=(SystemKind.A100, SystemKind.V100),
        node_counts=(1, 2, 4),
        shapes="flat",
        workloads=((0,),),
        payload_scales=(scale,),
        algorithms=(NCCLAlgorithm.RING, NCCLAlgorithm.TREE),
        max_program_size=4,
    )
    return grid.expand()


def _payload_ladder_scenarios(scale: float) -> List[Scenario]:
    # ``scale`` multiplies every rung, so the ladder keeps its four decades
    # and scenario count; ``--payload-scale 0.01`` just shifts it down 100x.
    rungs = tuple(r * scale for r in (0.001, 0.01, 0.1, 1.0))
    grid = ScenarioGrid(
        name="payload-ladder",
        systems=(SystemKind.A100,),
        node_counts=(2,),
        shapes=((8, 4),),
        workloads=((0,),),
        payload_scales=rungs,
        algorithms=(NCCLAlgorithm.RING, NCCLAlgorithm.TREE),
        max_program_size=4,
    )
    return grid.expand()


def _appendix_scenarios(scale: float) -> List[Scenario]:
    return scenarios_from_configs(appendix_configs(scale))


PRESETS: Dict[str, _Preset] = {
    preset.name: preset
    for preset in (
        _Preset(
            name="smoke",
            description="seconds-scale CI smoke grid (prediction-only)",
            default_payload_scale=0.002,
            measure_programs=False,
            measurement_runs=1,
            builder=_smoke_scenarios,
        ),
        _Preset(
            name="paper-table2",
            description="the paper's configuration table (Table 3 shapes + Table 4 rows)",
            default_payload_scale=1.0,
            builder=_paper_table2_scenarios,
        ),
        _Preset(
            name="gcp-scaleout",
            description="node-count scale-out on both GCP systems",
            default_payload_scale=1.0,
            builder=_gcp_scaleout_scenarios,
        ),
        _Preset(
            name="payload-ladder",
            description="payload sensitivity ladder on the A100 [8 4] shape",
            default_payload_scale=1.0,
            builder=_payload_ladder_scenarios,
        ),
        _Preset(
            name="appendix",
            description="the full appendix sweep (every shape, both systems)",
            default_payload_scale=1.0,
            builder=_appendix_scenarios,
        ),
    )
}


def preset_names() -> List[str]:
    return sorted(PRESETS)


def preset(name: str, payload_scale: Optional[float] = None) -> List[Scenario]:
    """The scenario list of a named preset (see :data:`PRESETS`)."""
    try:
        entry = PRESETS[name]
    except KeyError:
        raise EvaluationError(
            f"unknown preset {name!r}; available: {', '.join(preset_names())}"
        )
    return entry.scenarios(payload_scale)
