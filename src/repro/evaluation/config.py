"""Experiment configurations.

An :class:`ExperimentConfig` captures everything needed to reproduce one row
group of the paper's evaluation: which GPU system (and how many nodes), the
parallelism axes, the reduction axes, the NCCL algorithm and the payload.

The named constructors mirror the paper:

* :func:`table3_configs` — the placement-impact experiments (Table 3):
  A100 4-node ``[2 32]``, ``[4 16]``, ``[8 8]`` and V100 4-node ``[8 4]``,
  each reduced over axis 0 and axis 1, ring and tree.
* :func:`table4_configs` — the synthesis experiments (Table 4, rows F–L).
* :func:`appendix_configs` — the full appendix sweep (every axis shape for
  both systems with 2 and 4 nodes).
* :func:`table5_configs` / :func:`figure11_configs` — the simulator-accuracy
  experiments.

The paper's payload is ``2^29 * num_nodes`` float32 values per GPU
(:func:`paper_payload_bytes`).  The evaluation harness accepts a
``payload_scale`` so tests and quick benchmark runs can use smaller payloads
without changing relative behaviour (times scale linearly in the
bandwidth-dominated regime).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import List, Sequence, Tuple

from repro.cost.nccl import NCCLAlgorithm
from repro.errors import EvaluationError
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.topology.gcp import a100_system, v100_system
from repro.topology.topology import MachineTopology

__all__ = [
    "SystemKind",
    "ExperimentConfig",
    "paper_payload_bytes",
    "table3_configs",
    "table4_configs",
    "table5_configs",
    "appendix_configs",
    "figure11_configs",
]

FLOAT32_BYTES = 4


class SystemKind(str, Enum):
    """The two GPU systems of the paper."""

    A100 = "a100"
    V100 = "v100"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    def build(self, num_nodes: int) -> MachineTopology:
        if self == SystemKind.A100:
            return a100_system(num_nodes=num_nodes)
        return v100_system(num_nodes=num_nodes)

    @property
    def gpus_per_node(self) -> int:
        return 16 if self == SystemKind.A100 else 8


def paper_payload_bytes(num_nodes: int) -> int:
    """The paper's payload: ``2^29 * num_nodes`` float32 values per GPU."""
    if num_nodes < 1:
        raise EvaluationError("num_nodes must be >= 1")
    return (1 << 29) * num_nodes * FLOAT32_BYTES


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment: a system, a parallelism shape and a reduction request."""

    name: str
    system: SystemKind
    num_nodes: int
    axes: Tuple[int, ...]
    reduction_axes: Tuple[int, ...]
    algorithm: NCCLAlgorithm = NCCLAlgorithm.RING
    payload_scale: float = 1.0
    max_program_size: int = 5

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise EvaluationError("num_nodes must be >= 1")
        if not self.axes:
            raise EvaluationError("at least one parallelism axis is required")
        if not self.reduction_axes:
            raise EvaluationError("at least one reduction axis is required")
        if not 0 < self.payload_scale <= 1.0:
            raise EvaluationError("payload_scale must be in (0, 1]")
        total = 1
        for a in self.axes:
            total *= a
        expected = self.num_nodes * self.system.gpus_per_node
        if total != expected:
            raise EvaluationError(
                f"config {self.name!r}: parallelism {list(self.axes)} covers {total} devices "
                f"but the system has {expected}"
            )
        for axis in self.reduction_axes:
            if not 0 <= axis < len(self.axes):
                raise EvaluationError(
                    f"config {self.name!r}: reduction axis {axis} out of range"
                )

    # ------------------------------------------------------------------ #
    # Derived objects
    # ------------------------------------------------------------------ #
    def topology(self) -> MachineTopology:
        return self.system.build(self.num_nodes)

    def parallelism(self) -> ParallelismAxes:
        return ParallelismAxes(tuple(self.axes))

    def request(self) -> ReductionRequest:
        return ReductionRequest(tuple(self.reduction_axes), self.bytes_per_device)

    @property
    def bytes_per_device(self) -> int:
        return max(1, int(paper_payload_bytes(self.num_nodes) * self.payload_scale))

    def scaled(self, payload_scale: float) -> "ExperimentConfig":
        """A copy with a different payload scale (used by tests and quick runs)."""
        return replace(self, payload_scale=payload_scale)

    def with_algorithm(self, algorithm: NCCLAlgorithm) -> "ExperimentConfig":
        return replace(self, algorithm=algorithm, name=f"{self.name}-{algorithm.value}")

    def describe(self) -> str:
        axes = " ".join(str(a) for a in self.axes)
        reduce_axes = ",".join(str(a) for a in self.reduction_axes)
        return (
            f"{self.name}: {self.system} x{self.num_nodes} nodes, axes [{axes}], "
            f"reduce on [{reduce_axes}], {self.algorithm}"
        )


# --------------------------------------------------------------------------- #
# Named configuration sets mirroring the paper's tables
# --------------------------------------------------------------------------- #
def _config(
    name: str,
    system: SystemKind,
    nodes: int,
    axes: Sequence[int],
    reduction: Sequence[int],
    algorithm: NCCLAlgorithm,
    payload_scale: float,
) -> ExperimentConfig:
    return ExperimentConfig(
        name=name,
        system=system,
        num_nodes=nodes,
        axes=tuple(axes),
        reduction_axes=tuple(reduction),
        algorithm=algorithm,
        payload_scale=payload_scale,
    )


def table3_configs(payload_scale: float = 1.0) -> List[ExperimentConfig]:
    """Placement-impact experiments (Table 3): AllReduce only, both axes, both algorithms."""
    configs: List[ExperimentConfig] = []
    shapes = {
        "A": (SystemKind.A100, 4, (2, 32)),
        "B": (SystemKind.A100, 4, (4, 16)),
        "C": (SystemKind.A100, 4, (8, 8)),
        "E": (SystemKind.V100, 4, (8, 4)),
    }
    for label, (system, nodes, axes) in shapes.items():
        for reduction_axis in (0, 1):
            for algorithm in (NCCLAlgorithm.RING, NCCLAlgorithm.TREE):
                configs.append(
                    _config(
                        f"T3-{label}-axis{reduction_axis}-{algorithm.value}",
                        system,
                        nodes,
                        axes,
                        (reduction_axis,),
                        algorithm,
                        payload_scale,
                    )
                )
    return configs


def table4_configs(payload_scale: float = 1.0) -> List[ExperimentConfig]:
    """Synthesis experiments (Table 4, rows F1–L1)."""
    rows = [
        ("F", SystemKind.A100, 2, (8, 4), (0,), NCCLAlgorithm.RING),
        ("G", SystemKind.A100, 4, (4, 16), (0,), NCCLAlgorithm.TREE),
        ("H", SystemKind.A100, 4, (16, 2, 2), (0, 2), NCCLAlgorithm.RING),
        ("I", SystemKind.A100, 4, (2, 2, 16), (0, 2), NCCLAlgorithm.RING),
        ("J", SystemKind.A100, 4, (64,), (0,), NCCLAlgorithm.TREE),
        ("K", SystemKind.V100, 4, (8, 2, 2), (0, 2), NCCLAlgorithm.RING),
        ("L", SystemKind.V100, 4, (32,), (0,), NCCLAlgorithm.RING),
    ]
    return [
        _config(f"T4-{label}", system, nodes, axes, reduction, algorithm, payload_scale)
        for label, system, nodes, axes, reduction, algorithm in rows
    ]


def figure11_configs(payload_scale: float = 1.0) -> List[ExperimentConfig]:
    """The two per-program accuracy plots of Figure 11."""
    return [
        _config(
            "F11a-v100-ring-2x16-axis1",
            SystemKind.V100,
            4,
            (2, 16),
            (1,),
            NCCLAlgorithm.RING,
            payload_scale,
        ),
        _config(
            "F11b-a100-tree-4x2x8-axes02",
            SystemKind.A100,
            4,
            (4, 2, 8),
            (0, 2),
            NCCLAlgorithm.TREE,
            payload_scale,
        ),
    ]


def _axis_shapes_for(total: int, max_axes: int = 3) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """The (axes, reduction axes) shapes the appendix sweeps for ``total`` devices.

    Mirrors the paper's §4 protocol: a single axis reduced over itself, every
    two-axis factorization reduced over each axis, and three-axis shapes
    reduced over axes 0 and 2.
    """
    shapes: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = [((total,), (0,))]
    # Two-axis factorizations p0 * p1 = total with p0, p1 >= 2.
    p0 = 2
    while p0 <= total // 2:
        if total % p0 == 0:
            p1 = total // p0
            if p1 >= 2:
                shapes.append(((p0, p1), (0,)))
                shapes.append(((p0, p1), (1,)))
        p0 += 1
    if max_axes >= 3:
        # Three-axis shapes used in the paper: middle axis of size 2.
        p0 = 2
        while p0 <= total // 4:
            if total % (p0 * 2) == 0:
                p2 = total // (p0 * 2)
                if p2 >= 2:
                    shapes.append(((p0, 2, p2), (0, 2)))
            p0 += 1
    return shapes


def appendix_configs(
    payload_scale: float = 1.0,
    node_counts: Sequence[int] = (2, 4),
    systems: Sequence[SystemKind] = (SystemKind.A100, SystemKind.V100),
    algorithms: Sequence[NCCLAlgorithm] = (NCCLAlgorithm.RING, NCCLAlgorithm.TREE),
    max_axes: int = 3,
) -> List[ExperimentConfig]:
    """The full appendix sweep (every axis shape, both systems, 2 and 4 nodes)."""
    configs: List[ExperimentConfig] = []
    for system in systems:
        for nodes in node_counts:
            total = nodes * system.gpus_per_node
            for axes, reduction in _axis_shapes_for(total, max_axes):
                for algorithm in algorithms:
                    axes_name = "x".join(str(a) for a in axes)
                    reduce_name = "".join(str(a) for a in reduction)
                    configs.append(
                        _config(
                            f"APP-{system.value}-{nodes}n-{axes_name}-r{reduce_name}-{algorithm.value}",
                            system,
                            nodes,
                            axes,
                            reduction,
                            algorithm,
                            payload_scale,
                        )
                    )
    return configs


def table5_configs(payload_scale: float = 1.0, quick: bool = True) -> List[ExperimentConfig]:
    """Experiments aggregated into the Table 5 accuracy numbers.

    The paper aggregates over *all* of its experiments; ``quick=True`` uses the
    Table 4 set plus the Figure 11 configurations (a representative subset),
    ``quick=False`` uses the whole appendix sweep.
    """
    if quick:
        return table4_configs(payload_scale) + figure11_configs(payload_scale)
    return appendix_configs(payload_scale)
