"""Experiment harness reproducing the paper's evaluation (§4, §5, appendix).

* :mod:`repro.evaluation.config` — experiment configurations (system, node
  count, parallelism axes, reduction axes, NCCL algorithm, payload), including
  the named configurations behind each paper table.
* :mod:`repro.evaluation.scenarios` — scenario grids and named presets
  (``smoke``, ``paper-table2``, ``gcp-scaleout``, ``payload-ladder``,
  ``appendix``) that expand topology × shape × workload × payload ×
  algorithm axes into :class:`~repro.query.PlanQuery` streams.
* :mod:`repro.evaluation.runner` — routes every scenario's query through a
  :class:`~repro.query.Planner` (``P2`` or a caching ``PlanningService``),
  regains per-matrix program results, measures them on the testbed and
  streams resumable JSONL checkpoints.
* :mod:`repro.evaluation.accuracy` — top-k predictor accuracy (Table 5).
* :mod:`repro.evaluation.tables` — row generators for Tables 3, 4, 5 and the
  appendix sweep.
* :mod:`repro.evaluation.figures` — the per-program series of Figure 11.
* :mod:`repro.evaluation.workloads` — end-to-end training-step models
  (ResNet-50 data parallelism, Megatron-style sharding) used by the examples
  and the §1 "15% faster ResNet-50" experiment.
* :mod:`repro.evaluation.report` — plain-text rendering.
"""

from repro.evaluation.config import (
    ExperimentConfig,
    SystemKind,
    paper_payload_bytes,
    table3_configs,
    table4_configs,
    table5_configs,
    appendix_configs,
    figure11_configs,
)
from repro.evaluation.runner import (
    MatrixResult,
    ProgramResult,
    SweepResult,
    SweepRunner,
)
from repro.evaluation.scenarios import (
    PRESETS,
    Scenario,
    ScenarioGrid,
    preset,
    preset_names,
    scenarios_from_configs,
)
from repro.evaluation.accuracy import AccuracyReport, top_k_accuracy, accuracy_table
from repro.evaluation.tables import (
    build_table3,
    build_table4,
    build_table5,
    build_appendix_table,
)
from repro.evaluation.figures import Figure11Series, build_figure11

__all__ = [
    "ExperimentConfig",
    "SystemKind",
    "paper_payload_bytes",
    "table3_configs",
    "table4_configs",
    "table5_configs",
    "appendix_configs",
    "figure11_configs",
    "MatrixResult",
    "ProgramResult",
    "SweepResult",
    "SweepRunner",
    "PRESETS",
    "Scenario",
    "ScenarioGrid",
    "preset",
    "preset_names",
    "scenarios_from_configs",
    "AccuracyReport",
    "top_k_accuracy",
    "accuracy_table",
    "build_table3",
    "build_table4",
    "build_table5",
    "build_appendix_table",
    "Figure11Series",
    "build_figure11",
]
