"""Row generators for the paper's tables.

Each ``build_table*`` function returns a :class:`TableArtifact`: the header,
the rows and a pre-rendered plain-text form.  The benchmark harness prints
these artefacts; EXPERIMENTS.md records them next to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.allreduce import default_all_reduce
from repro.cost.nccl import NCCLAlgorithm
from repro.errors import EvaluationError
from repro.evaluation.accuracy import DEFAULT_TOP_KS, accuracy_table
from repro.evaluation.config import (
    ExperimentConfig,
    SystemKind,
    table3_configs,
    table4_configs,
    table5_configs,
)
from repro.evaluation.runner import SweepResult, SweepRunner
from repro.evaluation.simulators import shared_simulator
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.placement import DevicePlacement
from repro.runtime.events import TestbedSimulator
from repro.runtime.noise import NoiseModel
from repro.utils.tabulate import format_table

__all__ = [
    "TableArtifact",
    "build_table3",
    "build_table4",
    "build_table5",
    "build_appendix_table",
]


@dataclass(frozen=True)
class TableArtifact:
    """A reproduced table: header, rows and rendered text."""

    name: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]
    text: str

    @property
    def num_rows(self) -> int:
        return len(self.rows)


def _render(name: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> TableArtifact:
    text = format_table(headers, rows, title=name, float_fmt="{:.3f}")
    return TableArtifact(
        name=name,
        headers=tuple(headers),
        rows=tuple(tuple(r) for r in rows),
        text=text,
    )


# --------------------------------------------------------------------------- #
# Table 3: impact of parallelism placement on AllReduce
# --------------------------------------------------------------------------- #
def _allreduce_time(
    config: ExperimentConfig, matrix, measured: bool, noise_seed: int
) -> float:
    """Time of the default AllReduce on one matrix under ``config``."""
    topology = config.topology()
    placement = DevicePlacement(matrix)
    program = default_all_reduce(placement, config.request())
    if program.num_steps == 0:
        return 0.0
    if measured:
        # Testbed rows stay per-row: the noise model is reseeded per call so
        # row values are order-independent, which a shared instance would break.
        testbed = TestbedSimulator(topology, NoiseModel(seed=noise_seed))
        return testbed.measure(
            program, config.bytes_per_device, config.algorithm, num_runs=3
        ).total_seconds
    # Predicted rows share one simulator per topology, so the repeated
    # default-AllReduce signatures across matrices/algorithms compile once.
    simulator = shared_simulator(topology)
    return simulator.simulate(
        program, config.bytes_per_device, config.algorithm
    ).total_seconds


def build_table3(
    payload_scale: float = 1.0,
    measured: bool = True,
    noise_seed: int = 0,
) -> TableArtifact:
    """Table 3: AllReduce time per parallelism matrix, reduction axis and NCCL algorithm."""
    configs = table3_configs(payload_scale)
    # Group the 4 algorithm/axis variants of each shape together.
    by_shape: Dict[Tuple[SystemKind, Tuple[int, ...]], Dict[Tuple[int, NCCLAlgorithm], ExperimentConfig]] = {}
    for config in configs:
        key = (config.system, config.axes)
        by_shape.setdefault(key, {})[(config.reduction_axes[0], config.algorithm)] = config

    rows: List[List[object]] = []
    for (system, axes), variants in by_shape.items():
        any_config = next(iter(variants.values()))
        matrices = enumerate_parallelism_matrices(
            any_config.topology().hierarchy, any_config.parallelism()
        )
        axes_label = f"{system.value} [" + " ".join(str(a) for a in axes) + "]"
        for matrix in matrices:
            row: List[object] = [axes_label, matrix.describe()]
            for reduction_axis in (0, 1):
                for algorithm in (NCCLAlgorithm.RING, NCCLAlgorithm.TREE):
                    config = variants[(reduction_axis, algorithm)]
                    row.append(_allreduce_time(config, matrix, measured, noise_seed))
            rows.append(row)
    headers = [
        "System / axes",
        "Parallelism matrix",
        "axis0 Ring (s)",
        "axis0 Tree (s)",
        "axis1 Ring (s)",
        "axis1 Tree (s)",
    ]
    return _render("Table 3: AllReduce time per parallelism matrix", headers, rows)


# --------------------------------------------------------------------------- #
# Table 4: synthesized strategies vs. AllReduce
# --------------------------------------------------------------------------- #
def table4_rows_from_results(results: Sequence[SweepResult]) -> List[List[object]]:
    rows: List[List[object]] = []
    for result in results:
        config = result.config
        total_programs = result.total_programs
        outperforming = sum(
            m.programs_outperforming_all_reduce() for m in result.matrices
        )
        for matrix in result.matrices:
            baseline = matrix.all_reduce
            best = matrix.best()
            if baseline is None or best is None:
                continue
            speedup = matrix.speedup_over_all_reduce() or 1.0
            rows.append(
                [
                    config.name,
                    config.algorithm.value,
                    "[" + " ".join(str(a) for a in config.axes) + "]",
                    round(result.synthesis_seconds, 3),
                    f"{outperforming}/{total_programs}",
                    matrix.matrix_description,
                    baseline.evaluation_seconds,
                    best.evaluation_seconds,
                    round(speedup, 2),
                    best.mnemonic,
                ]
            )
    return rows


def build_table4(
    payload_scale: float = 1.0,
    runner: Optional[SweepRunner] = None,
    results: Optional[Sequence[SweepResult]] = None,
) -> TableArtifact:
    """Table 4: per-matrix AllReduce vs. the synthesized optimum (rows F1–L1)."""
    if results is None:
        runner = runner or SweepRunner()
        results = runner.run_many(table4_configs(payload_scale))
    rows = table4_rows_from_results(results)
    headers = [
        "Config",
        "NCCL algo",
        "Parallelism axes",
        "Synthesis time (s)",
        "Outperforming / total",
        "Parallelism matrix",
        "AllReduce (s)",
        "Optimal (s)",
        "Speedup",
        "Optimal program",
    ]
    return _render("Table 4: synthesized reduction strategies vs AllReduce", headers, rows)


# --------------------------------------------------------------------------- #
# Table 5: simulator accuracy
# --------------------------------------------------------------------------- #
def build_table5(
    payload_scale: float = 1.0,
    quick: bool = True,
    runner: Optional[SweepRunner] = None,
    results: Optional[Sequence[SweepResult]] = None,
    top_ks: Sequence[int] = DEFAULT_TOP_KS,
) -> TableArtifact:
    """Table 5: top-k accuracy of the analytic predictor vs. testbed measurements."""
    if results is None:
        runner = runner or SweepRunner()
        results = runner.run_many(table5_configs(payload_scale, quick=quick))
    by_system: Dict[str, List[SweepResult]] = {}
    for result in results:
        by_system.setdefault(result.config.system.value.upper(), []).append(result)
    rows = accuracy_table(by_system, top_ks)
    headers = ["System"] + [f"Top-{k} (%)" for k in top_ks]
    return _render("Table 5: simulator top-k prediction accuracy", headers, rows)


# --------------------------------------------------------------------------- #
# Appendix: full sweep
# --------------------------------------------------------------------------- #
def build_appendix_table(results: Sequence[SweepResult]) -> TableArtifact:
    """The appendix table: every configuration with per-matrix AllReduce/optimal/speedup."""
    if not results:
        raise EvaluationError("the appendix table needs at least one sweep result")
    rows: List[List[object]] = []
    for result in results:
        config = result.config
        for matrix in result.matrices:
            baseline = matrix.all_reduce
            best = matrix.best()
            if baseline is None or best is None:
                continue
            rows.append(
                [
                    config.name,
                    config.system.value,
                    config.num_nodes,
                    "[" + " ".join(str(a) for a in config.axes) + "]",
                    ",".join(str(a) for a in config.reduction_axes),
                    config.algorithm.value,
                    round(result.synthesis_seconds, 3),
                    matrix.num_programs,
                    matrix.matrix_description,
                    baseline.evaluation_seconds,
                    best.evaluation_seconds,
                    round(matrix.speedup_over_all_reduce() or 1.0, 2),
                ]
            )
    headers = [
        "Config",
        "System",
        "Nodes",
        "Axes",
        "Reduce",
        "Algo",
        "Synthesis (s)",
        "Programs",
        "Matrix",
        "AllReduce (s)",
        "Optimal (s)",
        "Speedup",
    ]
    return _render("Appendix: full placement/strategy sweep", headers, rows)
