"""Shared per-topology simulators for the table/figure builders.

The row generators in :mod:`repro.evaluation.tables` price many programs on
the same handful of topologies; constructing a fresh
:class:`~repro.cost.simulator.ProgramSimulator` per row discards the
compiled-profile and coefficient-table caches exactly where they pay off
(every table-3 shape reprices the same default-AllReduce signatures four
times over).  :func:`shared_simulator` keys one simulator per canonical
topology (structurally equal topologies share, whatever instance built
them) and cost model, so repeated shapes compile once per process.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Optional, Tuple

from repro.cost.model import CostModel
from repro.cost.simulator import ProgramSimulator
from repro.service.fingerprint import canonical_topology
from repro.topology.topology import MachineTopology

__all__ = ["shared_simulator", "clear_shared_simulators"]

_SIMULATORS: "OrderedDict[Tuple[str, CostModel], ProgramSimulator]" = OrderedDict()
_MAX_SIMULATORS = 16


def shared_simulator(
    topology: MachineTopology, cost_model: Optional[CostModel] = None
) -> ProgramSimulator:
    """The process-wide simulator for ``topology`` (built on first use)."""
    model = cost_model if cost_model is not None else CostModel()
    key = (json.dumps(canonical_topology(topology), sort_keys=True), model)
    simulator = _SIMULATORS.get(key)
    if simulator is None:
        simulator = ProgramSimulator(topology, model)
        _SIMULATORS[key] = simulator
        if len(_SIMULATORS) > _MAX_SIMULATORS:
            _SIMULATORS.popitem(last=False)
    else:
        _SIMULATORS.move_to_end(key)
    return simulator


def clear_shared_simulators() -> None:
    """Drop every shared simulator (tests that count compiles call this)."""
    _SIMULATORS.clear()
