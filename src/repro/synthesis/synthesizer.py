"""Enumerative, syntax-guided synthesis of reduction programs (paper §3.5).

The synthesizer explores sequences of reduction instructions in increasing
program size (iterative deepening over a depth-first search).  Each candidate
step must satisfy the Hoare precondition of its collective on every device
group it touches; every intermediate context must remain goal-bounded (see
:mod:`repro.synthesis.pruning`).  A program is emitted when the context equals
the goal context.

The instruction alphabet is derived once per synthesis hierarchy from
:func:`repro.dsl.grouping.enumerate_instructions`; instructions that induce
identical device groupings are de-duplicated there, which is why radix-1
levels in hierarchies like ``[1 2 1 2]`` do not blow up the search.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.dsl.grouping import Groups, enumerate_instructions
from repro.dsl.program import ReductionInstruction, ReductionProgram
from repro.errors import InvalidCollectiveError, SynthesisError
from repro.semantics.collectives import ALL_COLLECTIVES, Collective
from repro.semantics.state import StateContext
from repro.synthesis.hierarchy import SynthesisHierarchy
from repro.synthesis.pruning import SearchStatistics, context_within_goal

__all__ = ["SynthesizedProgram", "SynthesisResult", "Synthesizer", "synthesize_programs"]

DEFAULT_MAX_PROGRAM_SIZE = 5
DEFAULT_NODE_LIMIT = 500_000


@dataclass(frozen=True)
class SynthesizedProgram:
    """A valid program together with its per-step virtual device groups."""

    program: ReductionProgram
    step_groups: Tuple[Groups, ...]

    @property
    def size(self) -> int:
        return len(self.program)

    def describe(self, level_names: Optional[Sequence[str]] = None) -> str:
        return self.program.describe(level_names)


@dataclass
class SynthesisResult:
    """Everything produced by one synthesis run."""

    hierarchy: SynthesisHierarchy
    programs: List[SynthesizedProgram]
    statistics: SearchStatistics
    elapsed_seconds: float
    max_program_size: int

    @property
    def num_programs(self) -> int:
        return len(self.programs)

    def sorted_by_size(self) -> List[SynthesizedProgram]:
        return sorted(self.programs, key=lambda p: p.size)

    def describe(self) -> str:
        return (
            f"{self.num_programs} programs for {self.hierarchy.describe()} "
            f"in {self.elapsed_seconds:.3f}s ({self.statistics.describe()})"
        )


@dataclass
class Synthesizer:
    """Configurable enumerative synthesizer.

    Parameters
    ----------
    max_program_size:
        Maximum number of instructions per program (the paper uses 5).
    collectives:
        The collective alphabet; defaults to all five operations.
    node_limit:
        Safety cap on the number of expanded search nodes.
    deduplicate_instructions:
        Skip instructions whose induced grouping duplicates an earlier one.
    """

    max_program_size: int = DEFAULT_MAX_PROGRAM_SIZE
    collectives: Tuple[Collective, ...] = ALL_COLLECTIVES
    node_limit: int = DEFAULT_NODE_LIMIT
    deduplicate_instructions: bool = True

    def __post_init__(self) -> None:
        if self.max_program_size < 1:
            raise SynthesisError("max_program_size must be >= 1")
        if self.node_limit < 1:
            raise SynthesisError("node_limit must be >= 1")

    # ------------------------------------------------------------------ #
    # Instruction alphabet
    # ------------------------------------------------------------------ #
    def instruction_alphabet(
        self, hierarchy: SynthesisHierarchy
    ) -> List[Tuple[ReductionInstruction, Groups]]:
        """All candidate instructions (with their groups) over ``hierarchy``."""
        alphabet: List[Tuple[ReductionInstruction, Groups]] = []
        for slice_level, form, op, groups in enumerate_instructions(
            hierarchy.radices,
            collectives=self.collectives,
            deduplicate=self.deduplicate_instructions,
        ):
            alphabet.append((ReductionInstruction(slice_level, form, op), groups))
        return alphabet

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def synthesize(self, hierarchy: SynthesisHierarchy) -> SynthesisResult:
        """Enumerate every valid program of size up to ``max_program_size``."""
        start = time.perf_counter()
        alphabet = self.instruction_alphabet(hierarchy)
        initial = hierarchy.initial_context()
        goal = hierarchy.goal()
        statistics = SearchStatistics()
        programs: List[SynthesizedProgram] = []
        seen_signatures: set = set()

        if initial == goal:
            # Degenerate case: nothing to reduce (reduction group size 1).
            elapsed = time.perf_counter() - start
            return SynthesisResult(hierarchy, programs, statistics, elapsed, self.max_program_size)

        prefix_instructions: List[ReductionInstruction] = []
        prefix_groups: List[Groups] = []

        def _dfs(context: StateContext, depth: int) -> None:
            if statistics.nodes_expanded >= self.node_limit:
                statistics.hit_node_limit = True
                return
            statistics.nodes_expanded += 1
            for instruction, groups in alphabet:
                if statistics.hit_node_limit:
                    return
                statistics.steps_attempted += 1
                try:
                    next_context = instruction.apply_to_groups(context, groups)
                except InvalidCollectiveError:
                    statistics.steps_invalid += 1
                    continue
                if not context_within_goal(next_context, goal):
                    statistics.branches_pruned_goal += 1
                    continue
                prefix_instructions.append(instruction)
                prefix_groups.append(groups)
                if next_context == goal:
                    program = ReductionProgram(tuple(prefix_instructions))
                    signature = program.signature()
                    if signature in seen_signatures:
                        statistics.duplicate_programs += 1
                    else:
                        seen_signatures.add(signature)
                        programs.append(
                            SynthesizedProgram(program, tuple(prefix_groups))
                        )
                        statistics.record_program(len(program))
                elif depth + 1 < self.max_program_size:
                    _dfs(next_context, depth + 1)
                prefix_instructions.pop()
                prefix_groups.pop()

        _dfs(initial, 0)
        elapsed = time.perf_counter() - start
        programs.sort(key=lambda p: (p.size, p.program.signature()))
        return SynthesisResult(hierarchy, programs, statistics, elapsed, self.max_program_size)

    def iter_synthesize_sizes(
        self,
        hierarchy: SynthesisHierarchy,
        statistics: Optional[SearchStatistics] = None,
    ) -> Iterator[Tuple[int, List[SynthesizedProgram]]]:
        """Iterative-deepening synthesis: one ``(size, programs)`` batch per pass.

        Pass ``k`` runs a depth-``k`` search and yields exactly the size-``k``
        programs, sorted by signature — so concatenating the batches
        reproduces :meth:`synthesize`'s ``(size, signature)`` program order
        while letting a consumer stop between passes.  That is the lever the
        budgeted search driver pulls: the deepest pass dominates the
        enumeration cost (the search tree grows with its branching factor),
        so abandoning this generator after an early pass skips most of a
        placement's synthesis work.  The re-exploration of shallow prefixes
        across passes costs a constant factor, which is why the exhaustive
        pipeline keeps the single-pass :meth:`synthesize`.

        A program's signature determines its size (one entry per
        instruction), so per-pass signature deduplication finds exactly the
        programs the single pass would.  ``statistics`` accumulates across
        passes when given (per-pass node counts add up, so ``nodes_expanded``
        exceeds the single-pass count); the node limit applies to the
        accumulated total and ends enumeration once hit.
        """
        stats = statistics if statistics is not None else SearchStatistics()
        alphabet = self.instruction_alphabet(hierarchy)
        initial = hierarchy.initial_context()
        goal = hierarchy.goal()
        if initial == goal:
            return  # degenerate: nothing to reduce (reduction group size 1)

        seen_signatures: set = set()
        prefix_instructions: List[ReductionInstruction] = []
        prefix_groups: List[Groups] = []

        for target_size in range(1, self.max_program_size + 1):
            if stats.hit_node_limit:
                return
            batch: List[SynthesizedProgram] = []

            def _dfs(context: StateContext, depth: int) -> None:
                if stats.nodes_expanded >= self.node_limit:
                    stats.hit_node_limit = True
                    return
                stats.nodes_expanded += 1
                for instruction, groups in alphabet:
                    if stats.hit_node_limit:
                        return
                    stats.steps_attempted += 1
                    try:
                        next_context = instruction.apply_to_groups(context, groups)
                    except InvalidCollectiveError:
                        stats.steps_invalid += 1
                        continue
                    if not context_within_goal(next_context, goal):
                        stats.branches_pruned_goal += 1
                        continue
                    prefix_instructions.append(instruction)
                    prefix_groups.append(groups)
                    if next_context == goal:
                        # A goal at depth < target is a shorter program: an
                        # earlier pass already emitted it, and (like the
                        # single-pass search) nothing extends past the goal.
                        if depth + 1 == target_size:
                            program = ReductionProgram(tuple(prefix_instructions))
                            signature = program.signature()
                            if signature in seen_signatures:
                                stats.duplicate_programs += 1
                            else:
                                seen_signatures.add(signature)
                                batch.append(
                                    SynthesizedProgram(program, tuple(prefix_groups))
                                )
                                stats.record_program(len(program))
                    elif depth + 1 < target_size:
                        _dfs(next_context, depth + 1)
                    prefix_instructions.pop()
                    prefix_groups.pop()

            _dfs(initial, 0)
            batch.sort(key=lambda p: p.program.signature())
            yield target_size, batch


def synthesize_programs(
    hierarchy: SynthesisHierarchy,
    max_program_size: int = DEFAULT_MAX_PROGRAM_SIZE,
    collectives: Sequence[Collective] = ALL_COLLECTIVES,
    node_limit: int = DEFAULT_NODE_LIMIT,
) -> SynthesisResult:
    """Convenience wrapper: build a :class:`Synthesizer` and run it once."""
    synthesizer = Synthesizer(
        max_program_size=max_program_size,
        collectives=tuple(collectives),
        node_limit=node_limit,
    )
    return synthesizer.synthesize(hierarchy)
