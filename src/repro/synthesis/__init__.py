"""Reduction-strategy synthesis (paper §2.5, §3.4, §3.5).

* :mod:`repro.synthesis.hierarchy` — the four candidate synthesis hierarchies
  (system, column-based, row-based, reduction-axis) and factor collapsing.
* :mod:`repro.synthesis.synthesizer` — enumerative, syntax-guided search for
  semantically valid reduction programs in increasing program size.
* :mod:`repro.synthesis.lowering` — mapping synthesized programs to concrete
  per-step physical device groups, and validating the lowered result against
  the requested reduction.
* :mod:`repro.synthesis.pipeline` — the end-to-end P² front-end: enumerate
  parallelism matrices, synthesize programs for each, lower everything.
"""

from repro.synthesis.hierarchy import (
    HierarchyVariant,
    SynthesisHierarchy,
    SynthesisLevel,
    build_synthesis_hierarchy,
)
from repro.synthesis.synthesizer import SynthesisResult, Synthesizer, synthesize_programs
from repro.synthesis.lowering import LoweredProgram, LoweredStep, lower_program
from repro.synthesis.pipeline import PlacementCandidate, ProgramCandidate, synthesize_all

__all__ = [
    "HierarchyVariant",
    "SynthesisHierarchy",
    "SynthesisLevel",
    "build_synthesis_hierarchy",
    "SynthesisResult",
    "Synthesizer",
    "synthesize_programs",
    "LoweredProgram",
    "LoweredStep",
    "lower_program",
    "PlacementCandidate",
    "ProgramCandidate",
    "synthesize_all",
]
