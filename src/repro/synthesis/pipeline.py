"""The end-to-end P² synthesis pipeline.

Given a system hierarchy, the parallelism axes and a reduction request, the
pipeline

1. enumerates every parallelism matrix (placement synthesis, §3.1),
2. builds the reduction-axis synthesis hierarchy for each matrix (§3.4),
3. synthesizes all valid reduction programs up to the size limit (§3.5),
4. lowers each program to physical device groups, and
5. validates every lowered program against the requested reduction.

The result is a list of :class:`PlacementCandidate`, each carrying its
:class:`ProgramCandidate` list.  Costing / ranking is deliberately *not* done
here — the evaluation package combines these candidates with a topology and a
cost model — so the pipeline stays a pure, deterministic function of its
arguments and is easy to test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.dsl.pretty import program_mnemonic
from repro.errors import SynthesisError
from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.matrix import ParallelismMatrix, enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.synthesis.hierarchy import (
    HierarchyVariant,
    SynthesisHierarchy,
    build_synthesis_hierarchy,
)
from repro.synthesis.lowering import LoweredProgram, lower_synthesized
from repro.synthesis.synthesizer import (
    DEFAULT_MAX_PROGRAM_SIZE,
    SynthesisResult,
    Synthesizer,
)

__all__ = ["ProgramCandidate", "PlacementCandidate", "synthesize_all"]


@dataclass(frozen=True)
class ProgramCandidate:
    """One synthesized-and-lowered reduction strategy for a placement."""

    lowered: LoweredProgram
    mnemonic: str
    size: int
    is_default_all_reduce: bool = False

    def describe(self) -> str:
        tag = " (default)" if self.is_default_all_reduce else ""
        return f"{self.mnemonic}{tag}: {self.lowered.describe()}"


@dataclass
class PlacementCandidate:
    """A parallelism matrix together with every strategy synthesized for it.

    ``synthesis`` is ``None`` for candidates reconstructed from a cached plan
    (:mod:`repro.service.cache`): the search statistics are not persisted
    because the programs themselves are.
    """

    matrix: ParallelismMatrix
    placement: DevicePlacement
    hierarchy: SynthesisHierarchy
    synthesis: Optional[SynthesisResult] = None
    programs: List[ProgramCandidate] = field(default_factory=list)
    synthesis_seconds: float = 0.0

    @property
    def num_programs(self) -> int:
        return len(self.programs)

    @property
    def default_program(self) -> Optional[ProgramCandidate]:
        """The single-step AllReduce candidate, if the reduction needs one at all."""
        for candidate in self.programs:
            if candidate.is_default_all_reduce:
                return candidate
        return None

    def describe(self) -> str:
        return (
            f"matrix {self.matrix.describe()}: {self.num_programs} programs "
            f"(synthesis {self.synthesis_seconds:.3f}s)"
        )


def synthesize_all(
    hierarchy: SystemHierarchy,
    axes: ParallelismAxes,
    request: ReductionRequest,
    max_program_size: int = DEFAULT_MAX_PROGRAM_SIZE,
    variant: HierarchyVariant = HierarchyVariant.REDUCTION_COLLAPSED,
    node_limit: int = 500_000,
    validate: bool = True,
    max_matrices: Optional[int] = None,
) -> List[PlacementCandidate]:
    """Run the full P² synthesis pipeline.

    Parameters
    ----------
    validate:
        When true (default) every lowered program is checked against the
        requested reduction over the physical devices; failures raise
        :class:`~repro.errors.SynthesisError` because they indicate a bug, not
        a user error.
    max_matrices:
        Optional cap on the number of parallelism matrices considered.
    """
    request.validate_against(axes)
    matrices = enumerate_parallelism_matrices(hierarchy, axes, max_results=max_matrices)
    if not matrices:
        raise SynthesisError(
            f"no parallelism matrix exists for hierarchy {hierarchy.describe()} and "
            f"axes {axes.describe()} (device count {hierarchy.num_devices} vs "
            f"total parallelism {axes.total_parallelism})"
        )

    synthesizer = Synthesizer(max_program_size=max_program_size, node_limit=node_limit)
    candidates: List[PlacementCandidate] = []
    for matrix in matrices:
        placement = DevicePlacement(matrix)
        synthesis_hierarchy = build_synthesis_hierarchy(matrix, request, variant)
        start = time.perf_counter()
        result = synthesizer.synthesize(synthesis_hierarchy)
        elapsed = time.perf_counter() - start

        programs: List[ProgramCandidate] = []
        for synthesized in result.programs:
            lowered = lower_synthesized(
                synthesized,
                synthesis_hierarchy,
                placement,
                label=synthesized.program.describe(synthesis_hierarchy.names),
            )
            if validate and not lowered.validates_against(placement, request):
                raise SynthesisError(
                    "synthesized program failed physical validation: "
                    f"{synthesized.program.describe(synthesis_hierarchy.names)} on "
                    f"matrix {matrix.describe()}"
                )
            is_default = (
                len(synthesized.program) == 1
                and synthesized.program[0].collective.value == "AllReduce"
                and synthesized.program[0].slice_level == 0
            )
            programs.append(
                ProgramCandidate(
                    lowered=lowered,
                    mnemonic=program_mnemonic(synthesized.program),
                    size=synthesized.size,
                    is_default_all_reduce=is_default,
                )
            )

        candidates.append(
            PlacementCandidate(
                matrix=matrix,
                placement=placement,
                hierarchy=synthesis_hierarchy,
                synthesis=result,
                programs=programs,
                synthesis_seconds=elapsed,
            )
        )
    return candidates
