"""The end-to-end P² synthesis pipeline.

Given a system hierarchy, the parallelism axes and a reduction request, the
pipeline

1. enumerates every parallelism matrix (placement synthesis, §3.1),
2. builds the reduction-axis synthesis hierarchy for each matrix (§3.4),
3. synthesizes all valid reduction programs up to the size limit (§3.5),
4. lowers each program to physical device groups, and
5. validates every lowered program against the requested reduction.

The result is a list of :class:`PlacementCandidate`, each carrying its
:class:`ProgramCandidate` list.  Costing / ranking is deliberately *not* done
here — the evaluation package combines these candidates with a topology and a
cost model — so the pipeline stays a pure, deterministic function of its
arguments and is easy to test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.dsl.pretty import program_mnemonic
from repro.errors import SynthesisError
from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.matrix import ParallelismMatrix, enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.synthesis.hierarchy import (
    HierarchyVariant,
    SynthesisHierarchy,
    build_synthesis_hierarchy,
)
from repro.synthesis.lowering import LoweredProgram, lower_synthesized
from repro.synthesis.synthesizer import (
    DEFAULT_MAX_PROGRAM_SIZE,
    SynthesisResult,
    Synthesizer,
)

__all__ = [
    "ProgramCandidate",
    "PlacementCandidate",
    "enumerate_search_matrices",
    "iter_placement_candidates",
    "lower_program_candidate",
    "synthesize_all",
]


def enumerate_search_matrices(
    hierarchy: SystemHierarchy,
    axes: ParallelismAxes,
    request: ReductionRequest,
    max_matrices: Optional[int] = None,
):
    """Validate the search inputs and enumerate the parallelism matrices.

    The shared preamble of every placement stream — the eager pipeline below
    and both synthesis/baseline candidate sources (:mod:`repro.search`) —
    so input validation and the no-placement error stay identical across
    paths.
    """
    request.validate_against(axes)
    matrices = enumerate_parallelism_matrices(hierarchy, axes, max_results=max_matrices)
    if not matrices:
        raise SynthesisError(
            f"no parallelism matrix exists for hierarchy {hierarchy.describe()} and "
            f"axes {axes.describe()} (device count {hierarchy.num_devices} vs "
            f"total parallelism {axes.total_parallelism})"
        )
    return matrices


@dataclass(frozen=True)
class ProgramCandidate:
    """One synthesized-and-lowered reduction strategy for a placement."""

    lowered: LoweredProgram
    mnemonic: str
    size: int
    is_default_all_reduce: bool = False

    def describe(self) -> str:
        tag = " (default)" if self.is_default_all_reduce else ""
        return f"{self.mnemonic}{tag}: {self.lowered.describe()}"


@dataclass
class PlacementCandidate:
    """A parallelism matrix together with every strategy synthesized for it.

    ``synthesis`` is ``None`` for candidates reconstructed from a cached plan
    (:mod:`repro.service.cache`): the search statistics are not persisted
    because the programs themselves are.
    """

    matrix: ParallelismMatrix
    placement: DevicePlacement
    hierarchy: SynthesisHierarchy
    synthesis: Optional[SynthesisResult] = None
    programs: List[ProgramCandidate] = field(default_factory=list)
    synthesis_seconds: float = 0.0

    @property
    def num_programs(self) -> int:
        return len(self.programs)

    @property
    def default_program(self) -> Optional[ProgramCandidate]:
        """The single-step AllReduce candidate, if the reduction needs one at all."""
        for candidate in self.programs:
            if candidate.is_default_all_reduce:
                return candidate
        return None

    def describe(self) -> str:
        return (
            f"matrix {self.matrix.describe()}: {self.num_programs} programs "
            f"(synthesis {self.synthesis_seconds:.3f}s)"
        )


def lower_program_candidate(
    synthesized,
    synthesis_hierarchy: SynthesisHierarchy,
    placement: DevicePlacement,
    request: ReductionRequest,
    validate: bool,
) -> ProgramCandidate:
    """Lower one synthesized program and wrap it as a :class:`ProgramCandidate`.

    Shared by the eager pipeline below and the streaming synthesis source
    (:class:`repro.search.SynthesisSource`), so both lower, validate and
    classify programs identically.  Validation failures raise
    :class:`~repro.errors.SynthesisError` because they indicate a bug, not a
    user error.
    """
    lowered = lower_synthesized(
        synthesized,
        synthesis_hierarchy,
        placement,
        label=synthesized.program.describe(synthesis_hierarchy.names),
    )
    if validate and not lowered.validates_against(placement, request):
        raise SynthesisError(
            "synthesized program failed physical validation: "
            f"{synthesized.program.describe(synthesis_hierarchy.names)} on "
            f"matrix {placement.matrix.describe()}"
        )
    is_default = (
        len(synthesized.program) == 1
        and synthesized.program[0].collective.value == "AllReduce"
        and synthesized.program[0].slice_level == 0
    )
    return ProgramCandidate(
        lowered=lowered,
        mnemonic=program_mnemonic(synthesized.program),
        size=synthesized.size,
        is_default_all_reduce=is_default,
    )


def iter_placement_candidates(
    hierarchy: SystemHierarchy,
    axes: ParallelismAxes,
    request: ReductionRequest,
    max_program_size: int = DEFAULT_MAX_PROGRAM_SIZE,
    variant: HierarchyVariant = HierarchyVariant.REDUCTION_COLLAPSED,
    node_limit: int = 500_000,
    validate: bool = True,
    max_matrices: Optional[int] = None,
    matrix_indices: Optional[Sequence[int]] = None,
) -> Iterator[PlacementCandidate]:
    """The P² synthesis pipeline as a lazy per-placement stream.

    Placement enumeration and input validation happen eagerly (so bad inputs
    raise at the call site, exactly like :func:`synthesize_all`), but program
    synthesis — the expensive part — runs one matrix at a time as the
    returned iterator is pulled.  A consumer that stops early (the streaming
    search driver under a candidate or time budget) therefore never pays for
    the placements it does not look at.  Fully consuming the iterator yields
    exactly :func:`synthesize_all`'s candidates in the same order.

    Parameters
    ----------
    validate:
        When true (default) every lowered program is checked against the
        requested reduction over the physical devices; failures raise
        :class:`~repro.errors.SynthesisError` because they indicate a bug, not
        a user error.
    max_matrices:
        Optional cap on the number of parallelism matrices considered.
    matrix_indices:
        Optional filter over the canonical (post ``max_matrices``) matrix
        enumeration: only matrices at these indices are synthesized, in
        enumeration order.  The sharded search driver
        (:mod:`repro.search.sharded`) uses this to run the *identical*
        per-matrix pipeline on a subset — same code path, same entries —
        so its per-shard results concatenate back into the serial stream.
    """
    matrices = enumerate_search_matrices(hierarchy, axes, request, max_matrices)
    if matrix_indices is not None:
        wanted = set(matrix_indices)
        matrices = [m for i, m in enumerate(matrices) if i in wanted]
    synthesizer = Synthesizer(max_program_size=max_program_size, node_limit=node_limit)

    def _generate() -> Iterator[PlacementCandidate]:
        for matrix in matrices:
            placement = DevicePlacement(matrix)
            synthesis_hierarchy = build_synthesis_hierarchy(matrix, request, variant)
            start = time.perf_counter()
            result = synthesizer.synthesize(synthesis_hierarchy)
            elapsed = time.perf_counter() - start

            programs = [
                lower_program_candidate(
                    synthesized, synthesis_hierarchy, placement, request, validate
                )
                for synthesized in result.programs
            ]

            yield PlacementCandidate(
                matrix=matrix,
                placement=placement,
                hierarchy=synthesis_hierarchy,
                synthesis=result,
                programs=programs,
                synthesis_seconds=elapsed,
            )

    return _generate()


def synthesize_all(
    hierarchy: SystemHierarchy,
    axes: ParallelismAxes,
    request: ReductionRequest,
    max_program_size: int = DEFAULT_MAX_PROGRAM_SIZE,
    variant: HierarchyVariant = HierarchyVariant.REDUCTION_COLLAPSED,
    node_limit: int = 500_000,
    validate: bool = True,
    max_matrices: Optional[int] = None,
) -> List[PlacementCandidate]:
    """Run the full P² synthesis pipeline eagerly (see :func:`iter_placement_candidates`)."""
    return list(
        iter_placement_candidates(
            hierarchy,
            axes,
            request,
            max_program_size=max_program_size,
            variant=variant,
            node_limit=node_limit,
            validate=validate,
            max_matrices=max_matrices,
        )
    )
