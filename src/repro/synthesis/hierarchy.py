"""Synthesis hierarchies (paper §2.5 and §3.4).

Given a parallelism matrix and the reduction axes, four hierarchies can drive
the synthesis of reduction programs:

* ``(a)`` **SYSTEM** — the hardware hierarchy itself (one level per hardware
  level; each level implicitly covers all parallelism factors of its column).
* ``(b)`` **COLUMN** — one level per parallelism factor, column-major
  (hardware level outermost).
* ``(c)`` **ROW** — one level per parallelism factor, row-major (parallelism
  axis outermost).
* ``(d)`` **REDUCTION** — only the reduction axes' factors, row-major, with
  factors on the same hardware level optionally collapsed into one level.
  This is the hierarchy P² actually uses (Theorem 3.2: it is the most
  expressive of the four once programs are lowered).

A :class:`SynthesisHierarchy` records, for every level, which matrix positions
``(axis, hardware level)`` the level covers.  This is what lets lowering
translate a virtual device of the hierarchy into digits of the full placement
grid.  Positions not covered by any level are *free*: lowering replicates the
synthesized grouping across every assignment of the free digits (paper §3.4:
"lowering applies the generated grouping patterns to non-reduction axes").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import cached_property
from typing import Dict, List, Sequence, Tuple

from repro.errors import SynthesisError
from repro.hierarchy.matrix import ParallelismMatrix
from repro.hierarchy.parallelism import ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.semantics.goals import all_reduce_goal, goal_context, initial_context
from repro.semantics.state import StateContext
from repro.utils.mixed_radix import MixedRadix

__all__ = [
    "HierarchyVariant",
    "SynthesisLevel",
    "SynthesisHierarchy",
    "build_synthesis_hierarchy",
]

Position = Tuple[int, int]  # (parallelism axis row, hardware level column)


class HierarchyVariant(str, Enum):
    """Which of the paper's four candidate synthesis hierarchies to use."""

    SYSTEM = "system"            # (a)
    COLUMN = "column"            # (b)
    ROW = "row"                  # (c)
    REDUCTION = "reduction"      # (d), uncollapsed
    REDUCTION_COLLAPSED = "reduction-collapsed"  # (d) with same-level factors collapsed

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SynthesisLevel:
    """One level of a synthesis hierarchy.

    ``positions`` lists the parallelism-matrix positions the level covers in
    the order their digits are packed into the level's digit (most significant
    first); ``radix`` is the product of the corresponding factors.  The
    synthetic root level covers no positions and has radix 1.
    """

    name: str
    radix: int
    positions: Tuple[Position, ...]

    def __post_init__(self) -> None:
        if self.radix < 1:
            raise SynthesisError(f"level {self.name!r} has radix {self.radix} < 1")


@dataclass(frozen=True)
class SynthesisHierarchy:
    """A concrete synthesis hierarchy over one parallelism matrix."""

    variant: HierarchyVariant
    matrix: ParallelismMatrix
    reduction_axes: Tuple[int, ...]
    levels: Tuple[SynthesisLevel, ...]

    def __post_init__(self) -> None:
        if len(self.levels) == 0:
            raise SynthesisError("a synthesis hierarchy needs at least one level")
        for level in self.levels:
            expected = 1
            for (i, j) in level.positions:
                expected *= self.matrix.factor(i, j)
            if expected != level.radix:
                raise SynthesisError(
                    f"level {level.name!r} radix {level.radix} does not match the product "
                    f"of its covered factors ({expected})"
                )
        seen: set = set()
        for level in self.levels:
            for position in level.positions:
                if position in seen:
                    raise SynthesisError(f"matrix position {position} covered twice")
                seen.add(position)

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #
    @property
    def radices(self) -> Tuple[int, ...]:
        return tuple(level.radix for level in self.levels)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(level.name for level in self.levels)

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def num_virtual_devices(self) -> int:
        total = 1
        for level in self.levels:
            total *= level.radix
        return total

    @cached_property
    def covered_positions(self) -> Tuple[Position, ...]:
        """All matrix positions covered by some level, in level/packing order."""
        positions: List[Position] = []
        for level in self.levels:
            positions.extend(level.positions)
        return tuple(positions)

    @cached_property
    def free_positions(self) -> Tuple[Position, ...]:
        """Matrix positions not covered by any level (replicated during lowering)."""
        covered = set(self.covered_positions)
        free: List[Position] = []
        for i in range(self.matrix.num_rows):
            for j in range(self.matrix.num_cols):
                if (i, j) not in covered:
                    free.append((i, j))
        return tuple(free)

    @cached_property
    def _virtual_radix(self) -> MixedRadix:
        return MixedRadix(self.radices)

    @cached_property
    def _covered_radix(self) -> MixedRadix:
        return MixedRadix(tuple(self.matrix.factor(i, j) for i, j in self.covered_positions))

    @cached_property
    def free_radix(self) -> MixedRadix:
        return MixedRadix(tuple(self.matrix.factor(i, j) for i, j in self.free_positions))

    # ------------------------------------------------------------------ #
    # Virtual devices <-> matrix digits
    # ------------------------------------------------------------------ #
    def virtual_to_position_digits(self, virtual_device: int) -> Dict[Position, int]:
        """Map a virtual device index to digits for every covered matrix position."""
        level_digits = self._virtual_radix.decode(virtual_device)
        digits: Dict[Position, int] = {}
        for level, level_digit in zip(self.levels, level_digits):
            if not level.positions:
                continue
            sub = MixedRadix(tuple(self.matrix.factor(i, j) for i, j in level.positions))
            for position, digit in zip(level.positions, sub.decode(level_digit)):
                digits[position] = digit
        return digits

    def position_digits_to_virtual(self, digits: Dict[Position, int]) -> int:
        """Inverse of :meth:`virtual_to_position_digits` (missing digits default to 0)."""
        level_digits: List[int] = []
        for level in self.levels:
            if not level.positions:
                level_digits.append(0)
                continue
            sub = MixedRadix(tuple(self.matrix.factor(i, j) for i, j in level.positions))
            level_digits.append(sub.encode(tuple(digits.get(p, 0) for p in level.positions)))
        return self._virtual_radix.encode(level_digits)

    def physical_device(
        self,
        placement: DevicePlacement,
        virtual_device: int,
        free_digits: Sequence[int] = (),
    ) -> int:
        """Physical device id for a virtual device and an assignment of free digits.

        ``free_digits`` must follow the order of :attr:`free_positions`.
        """
        if placement.matrix is not self.matrix and placement.matrix != self.matrix:
            raise SynthesisError("placement was built from a different parallelism matrix")
        if len(free_digits) != len(self.free_positions):
            raise SynthesisError(
                f"expected {len(self.free_positions)} free digits, got {len(free_digits)}"
            )
        digits = self.virtual_to_position_digits(virtual_device)
        for position, digit in zip(self.free_positions, free_digits):
            digits[position] = digit
        grid = [
            [digits.get((i, j), 0) for j in range(self.matrix.num_cols)]
            for i in range(self.matrix.num_rows)
        ]
        return placement.grid_to_device(grid)

    # ------------------------------------------------------------------ #
    # Synthesis problem (initial / goal contexts over the virtual devices)
    # ------------------------------------------------------------------ #
    def initial_context(self) -> StateContext:
        return initial_context(self.num_virtual_devices)

    def goal(self) -> StateContext:
        """The goal context over the virtual devices for the requested reduction.

        For the reduction-axis variants every virtual device is in the same
        reduction group (the full all-reduce goal).  For the whole-matrix
        variants each virtual device's group contains the virtual devices that
        agree with it on every non-reduction-axis digit.
        """
        if self.variant in (HierarchyVariant.REDUCTION, HierarchyVariant.REDUCTION_COLLAPSED):
            return all_reduce_goal(self.num_virtual_devices)
        groups: Dict[Tuple, List[int]] = {}
        for virtual in range(self.num_virtual_devices):
            digits = self.virtual_to_position_digits(virtual)
            key = tuple(
                digits[(i, j)]
                for (i, j) in sorted(digits)
                if i not in self.reduction_axes
            )
            groups.setdefault(key, []).append(virtual)
        return goal_context(self.num_virtual_devices, [groups[k] for k in sorted(groups)])

    def describe(self) -> str:
        parts = [f"{level.name}:{level.radix}" for level in self.levels]
        return f"{self.variant.value} [" + " ".join(parts) + "]"


# --------------------------------------------------------------------------- #
# Constructors for the four variants
# --------------------------------------------------------------------------- #
def _root_level() -> SynthesisLevel:
    return SynthesisLevel(name="root", radix=1, positions=())


def _level_name(matrix: ParallelismMatrix, position: Position) -> str:
    axis, level = position
    return f"{matrix.axes.names[axis]}@{matrix.hierarchy.names[level]}"


def build_synthesis_hierarchy(
    matrix: ParallelismMatrix,
    request: ReductionRequest,
    variant: HierarchyVariant = HierarchyVariant.REDUCTION_COLLAPSED,
) -> SynthesisHierarchy:
    """Build one of the four candidate synthesis hierarchies for ``matrix``."""
    request.validate_against(matrix.axes)
    reduction_axes = tuple(sorted(request.axes))
    levels: List[SynthesisLevel] = [_root_level()]

    if variant == HierarchyVariant.SYSTEM:
        for j in range(matrix.num_cols):
            positions = tuple((i, j) for i in range(matrix.num_rows))
            levels.append(
                SynthesisLevel(
                    name=matrix.hierarchy.names[j],
                    radix=matrix.hierarchy.cardinalities[j],
                    positions=positions,
                )
            )
    elif variant == HierarchyVariant.COLUMN:
        for j in range(matrix.num_cols):
            for i in range(matrix.num_rows):
                position = (i, j)
                levels.append(
                    SynthesisLevel(
                        name=_level_name(matrix, position),
                        radix=matrix.factor(i, j),
                        positions=(position,),
                    )
                )
    elif variant == HierarchyVariant.ROW:
        for i in range(matrix.num_rows):
            for j in range(matrix.num_cols):
                position = (i, j)
                levels.append(
                    SynthesisLevel(
                        name=_level_name(matrix, position),
                        radix=matrix.factor(i, j),
                        positions=(position,),
                    )
                )
    elif variant == HierarchyVariant.REDUCTION:
        for i in reduction_axes:
            for j in range(matrix.num_cols):
                position = (i, j)
                levels.append(
                    SynthesisLevel(
                        name=_level_name(matrix, position),
                        radix=matrix.factor(i, j),
                        positions=(position,),
                    )
                )
    elif variant == HierarchyVariant.REDUCTION_COLLAPSED:
        for j in range(matrix.num_cols):
            positions = tuple((i, j) for i in reduction_axes)
            radix = 1
            for i in reduction_axes:
                radix *= matrix.factor(i, j)
            levels.append(
                SynthesisLevel(
                    name=matrix.hierarchy.names[j],
                    radix=radix,
                    positions=positions,
                )
            )
    else:  # pragma: no cover - defensive
        raise SynthesisError(f"unknown hierarchy variant {variant!r}")

    return SynthesisHierarchy(
        variant=variant,
        matrix=matrix,
        reduction_axes=reduction_axes,
        levels=tuple(levels),
    )
