"""Lowering synthesized programs onto physical devices (paper §3.4).

A synthesized program talks about the *virtual* devices of its synthesis
hierarchy.  Lowering produces, for every instruction, the concrete groups of
*physical* device ids that execute the collective in that step:

* matrix positions covered by the hierarchy are taken from the virtual device,
* free (uncovered) positions — for the reduction-axis hierarchy these are all
  factors of the non-reduction axes — are swept over every possible value, so
  the synthesized grouping is replicated once per replica of the reduction
  pattern, all executing concurrently within the step.

:class:`LoweredProgram` is the artefact every downstream consumer uses: the
cost model prices it, the runtime executes it, and the evaluation harness
compares lowered programs produced from different synthesis hierarchies by
their :meth:`LoweredProgram.signature`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.dsl.program import ReductionProgram
from repro.errors import InvalidCollectiveError, LoweringError
from repro.hierarchy.parallelism import ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.semantics.collectives import Collective, apply_collective
from repro.semantics.goals import goal_context, initial_context
from repro.semantics.state import DeviceState, StateContext
from repro.synthesis.hierarchy import SynthesisHierarchy
from repro.synthesis.synthesizer import SynthesizedProgram

__all__ = ["LoweredStep", "LoweredProgram", "lower_program", "lower_synthesized"]


@dataclass(frozen=True)
class LoweredStep:
    """One step of a lowered program: concurrent device groups running one collective."""

    collective: Collective
    groups: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise LoweringError("a lowered step needs at least one device group")
        seen: set = set()
        for group in self.groups:
            if len(group) < 2:
                raise LoweringError(f"lowered group {group} has fewer than 2 devices")
            for device in group:
                if device in seen:
                    raise LoweringError(
                        f"device {device} appears in two groups of the same step"
                    )
                seen.add(device)

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def group_size(self) -> int:
        """Common group size (steps produced by lowering always have uniform groups)."""
        return len(self.groups[0])

    @property
    def devices(self) -> FrozenSet[int]:
        return frozenset(d for group in self.groups for d in group)

    def describe(self) -> str:
        preview = ", ".join(
            "{" + ",".join(str(d) for d in group) + "}" for group in self.groups[:4]
        )
        suffix = "" if len(self.groups) <= 4 else f", ... ({len(self.groups)} groups)"
        return f"{self.collective} over {preview}{suffix}"


@dataclass(frozen=True)
class LoweredProgram:
    """A fully lowered reduction strategy over physical devices."""

    num_devices: int
    steps: Tuple[LoweredStep, ...]
    source: Optional[ReductionProgram] = None
    label: str = ""

    def __post_init__(self) -> None:
        for step in self.steps:
            for group in step.groups:
                for device in group:
                    if not 0 <= device < self.num_devices:
                        raise LoweringError(
                            f"device {device} out of range for {self.num_devices} devices"
                        )

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def signature(self) -> Tuple:
        """Hashable identity of the communication pattern (order-sensitive in steps,
        order-insensitive in the groups within a step)."""
        return tuple(
            (step.collective.value, frozenset(step.groups)) for step in self.steps
        )

    # ------------------------------------------------------------------ #
    # Serialization (used by plan caching and the query API's JSON output)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """JSON-serializable form: label + per-step collective and groups.

        The synthesizer's ``source`` program is deliberately not persisted —
        it is search state, not part of the communication pattern.
        """
        return {
            "label": self.label,
            "steps": [
                {
                    "collective": step.collective.value,
                    "groups": [list(group) for group in step.groups],
                }
                for step in self.steps
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict, num_devices: int) -> "LoweredProgram":
        """Rebuild a program from :meth:`to_dict` output (``source`` is ``None``)."""
        steps = tuple(
            LoweredStep(
                collective=Collective(step["collective"]),
                groups=tuple(tuple(int(d) for d in group) for group in step["groups"]),
            )
            for step in data["steps"]
        )
        return cls(
            num_devices=num_devices, steps=steps, source=None, label=data.get("label", "")
        )

    # ------------------------------------------------------------------ #
    # Semantic validation over the physical devices
    # ------------------------------------------------------------------ #
    def run_semantics(self, initial: StateContext) -> StateContext:
        """Run the Hoare semantics of every step starting from ``initial``."""
        context = initial
        for step in self.steps:
            updates: Dict[int, DeviceState] = {}
            for group in step.groups:
                pre = [context[d] for d in group]
                post = apply_collective(step.collective, pre)
                for device, state in zip(group, post):
                    updates[device] = state
            context = context.replace(updates)
        return context

    def validates_against(
        self, placement: DevicePlacement, request: ReductionRequest
    ) -> bool:
        """True if the program implements the requested reduction on every device."""
        groups = placement.reduction_groups(request)
        initial = initial_context(self.num_devices)
        goal = goal_context(self.num_devices, groups)
        try:
            return self.run_semantics(initial) == goal
        except InvalidCollectiveError:
            return False

    def describe(self) -> str:
        name = self.label or (self.source.describe() if self.source else "<lowered>")
        steps = "; ".join(f"{s.collective}x{s.num_groups}(g={s.group_size})" for s in self.steps)
        return f"{name}: {steps}"


# --------------------------------------------------------------------------- #
# Lowering
# --------------------------------------------------------------------------- #
def lower_synthesized(
    synthesized: SynthesizedProgram,
    hierarchy: SynthesisHierarchy,
    placement: DevicePlacement,
    label: str = "",
) -> LoweredProgram:
    """Lower a synthesizer output (which carries its per-step virtual groups)."""
    return _lower(
        synthesized.program, synthesized.step_groups, hierarchy, placement, label
    )


def lower_program(
    program: ReductionProgram,
    hierarchy: SynthesisHierarchy,
    placement: DevicePlacement,
    label: str = "",
) -> LoweredProgram:
    """Lower an arbitrary DSL program by first deriving its virtual groups."""
    step_groups = tuple(
        instruction.groups(hierarchy.radices) for instruction in program
    )
    for instruction, groups in zip(program, step_groups):
        if not groups:
            raise LoweringError(
                f"instruction {instruction.describe(hierarchy.names)} induces no groups"
            )
    return _lower(program, step_groups, hierarchy, placement, label)


def _lower(
    program: ReductionProgram,
    step_groups: Sequence[Tuple[Tuple[int, ...], ...]],
    hierarchy: SynthesisHierarchy,
    placement: DevicePlacement,
    label: str,
) -> LoweredProgram:
    if placement.matrix != hierarchy.matrix:
        raise LoweringError("placement and synthesis hierarchy use different matrices")

    free_assignments: List[Tuple[int, ...]] = list(hierarchy.free_radix) or [()]
    # Cache the virtual -> physical map per free assignment; each virtual device
    # is looked up many times across steps.
    device_maps: List[Dict[int, int]] = []
    for free_digits in free_assignments:
        mapping = {
            virtual: hierarchy.physical_device(placement, virtual, free_digits)
            for virtual in range(hierarchy.num_virtual_devices)
        }
        device_maps.append(mapping)

    lowered_steps: List[LoweredStep] = []
    for instruction, virtual_groups in zip(program, step_groups):
        physical_groups: List[Tuple[int, ...]] = []
        for mapping in device_maps:
            for group in virtual_groups:
                physical_groups.append(tuple(mapping[v] for v in group))
        lowered_steps.append(
            LoweredStep(collective=instruction.collective, groups=tuple(physical_groups))
        )
    return LoweredProgram(
        num_devices=placement.num_devices,
        steps=tuple(lowered_steps),
        source=program,
        label=label,
    )
