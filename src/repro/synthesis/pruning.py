"""Search-space pruning predicates used by the synthesizer.

Two cheap necessary conditions keep the enumerative search small:

* **Goal-boundedness** — contributions, once folded into a device's chunk,
  are never separated again (the Hoare rules only grow, clear or copy rows).
  Therefore every row of every device state must stay a subset of that
  device's goal row; as soon as some device holds a contribution its goal
  forbids, the branch can never reach the goal and is cut.  This is exactly
  the argument behind Lemma B.3 in the paper's appendix.
* **Progress/feasibility** — with at most ``remaining`` further instructions,
  the goal must still be reachable in principle.  We use a very cheap bound:
  if no instruction remains and the context is not the goal, cut.

Both predicates are pure functions of state contexts so they can be unit- and
property-tested independently of the search itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.semantics.state import StateContext

__all__ = ["context_within_goal", "SearchStatistics"]


def context_within_goal(context: StateContext, goal: StateContext) -> bool:
    """True if every device row is a subset of the corresponding goal row."""
    for device in range(context.num_devices):
        state = context[device]
        goal_state = goal[device]
        for r in range(state.num_chunks):
            if state.row(r) & ~goal_state.row(r):
                return False
    return True


@dataclass
class SearchStatistics:
    """Counters describing one synthesis run (reported in the evaluation tables)."""

    nodes_expanded: int = 0
    steps_attempted: int = 0
    steps_invalid: int = 0
    branches_pruned_goal: int = 0
    programs_found: int = 0
    duplicate_programs: int = 0
    hit_node_limit: bool = False
    per_size_counts: Dict[int, int] = field(default_factory=dict)

    def record_program(self, size: int) -> None:
        self.programs_found += 1
        self.per_size_counts[size] = self.per_size_counts.get(size, 0) + 1

    def merge(self, other: "SearchStatistics") -> None:
        """Fold another run's counters into this one (per-placement -> per-plan).

        The search driver aggregates the per-placement synthesizer statistics
        this way so one query's :class:`~repro.query.PlanOutcome` can report
        the whole search's counters.
        """
        self.nodes_expanded += other.nodes_expanded
        self.steps_attempted += other.steps_attempted
        self.steps_invalid += other.steps_invalid
        self.branches_pruned_goal += other.branches_pruned_goal
        self.programs_found += other.programs_found
        self.duplicate_programs += other.duplicate_programs
        self.hit_node_limit = self.hit_node_limit or other.hit_node_limit
        for size, count in other.per_size_counts.items():
            self.per_size_counts[size] = self.per_size_counts.get(size, 0) + count

    def to_dict(self) -> Dict:
        """JSON-ready form, surfaced in planning provenance and sweep records.

        ``per_size_counts`` keys become strings (JSON objects cannot have
        integer keys) in ascending size order.
        """
        return {
            "nodes_expanded": self.nodes_expanded,
            "steps_attempted": self.steps_attempted,
            "steps_invalid": self.steps_invalid,
            "branches_pruned_goal": self.branches_pruned_goal,
            "programs_found": self.programs_found,
            "duplicate_programs": self.duplicate_programs,
            "hit_node_limit": self.hit_node_limit,
            "per_size_counts": {
                str(size): count for size, count in sorted(self.per_size_counts.items())
            },
        }

    def describe(self) -> str:
        sizes = ", ".join(f"size {k}: {v}" for k, v in sorted(self.per_size_counts.items()))
        return (
            f"{self.programs_found} programs "
            f"({sizes or 'none'}); expanded {self.nodes_expanded} nodes, "
            f"{self.steps_invalid}/{self.steps_attempted} steps invalid, "
            f"{self.branches_pruned_goal} goal-pruned"
        )
