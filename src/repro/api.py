"""High-level user-facing API.

:class:`P2` bundles the whole tool the paper describes: give it a machine
topology, a parallelism shape, a reduction request and a payload size, and it
returns every (placement, strategy) candidate ranked by the simulator —
together with helpers to inspect the best few and to verify them numerically.

Example
-------
>>> from repro.api import P2
>>> from repro.topology import a100_system
>>> from repro import ParallelismAxes, ReductionRequest
>>> p2 = P2(a100_system(num_nodes=2))
>>> plan = p2.optimize(ParallelismAxes.of(8, 4), ReductionRequest.over(0),
...                    bytes_per_device=1 << 26)
>>> best = plan.best
>>> best.predicted_seconds <= plan.default_all_reduce().predicted_seconds
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.baselines.allreduce import default_all_reduce
from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.simulator import ProgramSimulator, SimulationResult
from repro.errors import EvaluationError
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.matrix import ParallelismMatrix
from repro.runtime.events import MeasurementResult, TestbedSimulator
from repro.runtime.noise import NoiseModel
from repro.runtime.verification import VerificationReport, verify_against_placement
from repro.synthesis.lowering import LoweredProgram
from repro.synthesis.pipeline import PlacementCandidate, synthesize_all
from repro.topology.topology import MachineTopology
from repro.utils.tabulate import format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard; see repro.service
    from repro.service.engine import PlanningService

__all__ = [
    "RankedStrategy",
    "OptimizationPlan",
    "P2",
    "StrategyEntry",
    "collect_strategy_entries",
    "evaluate_entries_serial",
    "rank_entries",
    "compute_plan",
]


@dataclass(frozen=True)
class RankedStrategy:
    """One (parallelism matrix, lowered program) candidate with its predicted time."""

    matrix: ParallelismMatrix
    program: LoweredProgram
    mnemonic: str
    predicted_seconds: float
    is_default_all_reduce: bool
    candidate: PlacementCandidate

    def describe(self) -> str:
        tag = " [default]" if self.is_default_all_reduce else ""
        return (
            f"{self.matrix.describe()} / {self.mnemonic}{tag}: "
            f"{self.predicted_seconds:.4f}s predicted"
        )


@dataclass
class OptimizationPlan:
    """The ranked output of one :meth:`P2.optimize` call."""

    axes: ParallelismAxes
    request: ReductionRequest
    bytes_per_device: int
    algorithm: NCCLAlgorithm
    strategies: List[RankedStrategy]
    candidates: List[PlacementCandidate]

    @property
    def best(self) -> RankedStrategy:
        if not self.strategies:
            raise EvaluationError("the plan contains no strategies")
        return self.strategies[0]

    def top(self, k: int) -> List[RankedStrategy]:
        return self.strategies[: max(k, 0)]

    def strategies_for_matrix(self, matrix: ParallelismMatrix) -> List[RankedStrategy]:
        return [s for s in self.strategies if s.matrix == matrix]

    def default_all_reduce(self, matrix: Optional[ParallelismMatrix] = None) -> RankedStrategy:
        """The default AllReduce strategy (for ``matrix``, or the best-placed one)."""
        defaults = [s for s in self.strategies if s.is_default_all_reduce]
        if matrix is not None:
            defaults = [s for s in defaults if s.matrix == matrix]
        if not defaults:
            raise EvaluationError("no default AllReduce strategy in this plan")
        return min(defaults, key=lambda s: s.predicted_seconds)

    def speedup_over_default(self) -> float:
        """Predicted speedup of the best strategy over the best-placed AllReduce.

        A zero-step strategy (the reduction groups are singletons, so no
        communication is needed) is predicted at 0.0s; against a default that
        does take time the speedup is infinite, not 1.0.  When the default
        itself is also free the two are equal and the speedup is 1.0.
        """
        best = self.best.predicted_seconds
        default = self.default_all_reduce().predicted_seconds
        if best <= 0:
            return float("inf") if default > 0 else 1.0
        return default / best

    def describe(self, top_k: int = 5) -> str:
        rows = [
            [i + 1, s.matrix.describe(), s.mnemonic, s.predicted_seconds,
             "yes" if s.is_default_all_reduce else ""]
            for i, s in enumerate(self.top(top_k))
        ]
        return format_table(
            ["rank", "matrix", "program", "predicted (s)", "default"],
            rows,
            title=(
                f"Top {min(top_k, len(self.strategies))} of {len(self.strategies)} strategies "
                f"({self.algorithm}, {self.bytes_per_device / 1e6:.0f} MB per device)"
            ),
            float_fmt="{:.4f}",
        )


@dataclass(frozen=True)
class StrategyEntry:
    """One (candidate, lowered program) pair awaiting cost evaluation.

    The entry list is the contract between synthesis and ranking: the serial
    path, the process-pool path (:mod:`repro.service.parallel`) and the
    planning service all build the same entries in the same order, so a
    stable sort over the predicted times yields the identical ranking no
    matter who computed them.
    """

    candidate: PlacementCandidate
    lowered: LoweredProgram
    mnemonic: str
    is_default_all_reduce: bool


def collect_strategy_entries(
    candidates: Sequence[PlacementCandidate], request: ReductionRequest
) -> List[StrategyEntry]:
    """Flatten placement candidates into the evaluation-order entry list."""
    entries: List[StrategyEntry] = []
    for candidate in candidates:
        baseline = default_all_reduce(candidate.placement, request)
        entries.append(StrategyEntry(candidate, baseline, "AR", True))
        for program in candidate.programs:
            if program.is_default_all_reduce:
                continue
            entries.append(
                StrategyEntry(candidate, program.lowered, program.mnemonic, False)
            )
    return entries


def evaluate_entries_serial(
    entries: Sequence[StrategyEntry],
    topology: MachineTopology,
    cost_model: CostModel,
    bytes_per_device: int,
    algorithm: NCCLAlgorithm,
) -> List[float]:
    """Predicted seconds per entry, computed in-process (zero-step programs are free)."""
    simulator = ProgramSimulator(topology, cost_model)
    return [
        0.0
        if entry.lowered.num_steps == 0
        else simulator.simulate(entry.lowered, bytes_per_device, algorithm).total_seconds
        for entry in entries
    ]


def compute_plan(
    topology: MachineTopology,
    cost_model: CostModel,
    axes: ParallelismAxes,
    request: ReductionRequest,
    bytes_per_device: int,
    algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    max_program_size: int = 5,
    max_matrices: Optional[int] = None,
    evaluator=None,
) -> Tuple["OptimizationPlan", float, float]:
    """The cold-path pipeline shared by :meth:`P2.optimize` and the service.

    Synthesizes all candidates, evaluates them (through ``evaluator`` — any
    object with an ``evaluate(programs, bytes_per_device, algorithm)`` method,
    e.g. a :class:`~repro.service.parallel.ParallelEvaluator` — or serially
    when ``None``) and ranks them.  Keeping this in one place is what makes
    the service's fingerprint-keyed cache sound: both entry points compute
    plans from the same inputs the same way.  Returns the plan plus the
    synthesis and evaluation wall-clock seconds.
    """
    synth_start = time.perf_counter()
    candidates = synthesize_all(
        topology.hierarchy,
        axes,
        request,
        max_program_size=max_program_size,
        max_matrices=max_matrices,
    )
    entries = collect_strategy_entries(candidates, request)
    synthesis_seconds = time.perf_counter() - synth_start

    eval_start = time.perf_counter()
    if evaluator is not None:
        predicted = evaluator.evaluate(
            [entry.lowered for entry in entries], bytes_per_device, algorithm
        )
    else:
        predicted = evaluate_entries_serial(
            entries, topology, cost_model, bytes_per_device, algorithm
        )
    evaluation_seconds = time.perf_counter() - eval_start

    plan = OptimizationPlan(
        axes=axes,
        request=request,
        bytes_per_device=bytes_per_device,
        algorithm=algorithm,
        strategies=rank_entries(entries, predicted),
        candidates=candidates,
    )
    return plan, synthesis_seconds, evaluation_seconds


def rank_entries(
    entries: Sequence[StrategyEntry], predicted: Sequence[float]
) -> List[RankedStrategy]:
    """Pair entries with their predicted times and stable-sort into a ranking."""
    if len(entries) != len(predicted):
        raise EvaluationError(
            f"{len(predicted)} predictions for {len(entries)} strategy entries"
        )
    strategies = [
        RankedStrategy(
            matrix=entry.candidate.matrix,
            program=entry.lowered,
            mnemonic=entry.mnemonic,
            predicted_seconds=seconds,
            is_default_all_reduce=entry.is_default_all_reduce,
            candidate=entry.candidate,
        )
        for entry, seconds in zip(entries, predicted)
    ]
    strategies.sort(key=lambda s: s.predicted_seconds)
    return strategies


@dataclass
class P2:
    """The end-to-end tool: placement synthesis + strategy synthesis + ranking."""

    topology: MachineTopology
    cost_model: CostModel = field(default_factory=CostModel)
    max_program_size: int = 5
    noise_seed: int = 0

    # ------------------------------------------------------------------ #
    def optimize(
        self,
        axes: ParallelismAxes,
        request: ReductionRequest,
        bytes_per_device: int,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        max_matrices: Optional[int] = None,
        service: Optional["PlanningService"] = None,
        n_workers: Optional[int] = None,
    ) -> OptimizationPlan:
        """Synthesize and rank every (placement, strategy) candidate.

        Parameters
        ----------
        service:
            Opt-in: route the query through a
            :class:`~repro.service.engine.PlanningService` (plan caching,
            request stats, optional worker pool).  The service must be bound
            to this tool's topology.
        n_workers:
            Opt-in: fan candidate simulation out over a process pool of this
            size (``service`` takes precedence; the service manages its own
            pool).  The ranking is identical to the serial path.
        """
        if bytes_per_device <= 0:
            raise EvaluationError("bytes_per_device must be positive")
        if service is not None:
            if not service.compatible_with(self.topology):
                raise EvaluationError(
                    f"planning service is bound to topology "
                    f"{service.topology.name!r}, not this tool's {self.topology.name!r}"
                )
            if (
                service.cost_model != self.cost_model
                or service.max_program_size != self.max_program_size
            ):
                raise EvaluationError(
                    "planning service uses a different cost model or "
                    "max_program_size than this tool; it would return plans "
                    "ranked under different assumptions"
                )
            return service.optimize(
                axes,
                request,
                bytes_per_device,
                algorithm=algorithm,
                max_matrices=max_matrices,
            )
        if n_workers is not None and n_workers > 1:
            from repro.service.parallel import ParallelEvaluator

            with ParallelEvaluator(self.topology, self.cost_model, n_workers) as pool:
                plan, _, _ = compute_plan(
                    self.topology,
                    self.cost_model,
                    axes,
                    request,
                    bytes_per_device,
                    algorithm,
                    max_program_size=self.max_program_size,
                    max_matrices=max_matrices,
                    evaluator=pool,
                )
        else:
            plan, _, _ = compute_plan(
                self.topology,
                self.cost_model,
                axes,
                request,
                bytes_per_device,
                algorithm,
                max_program_size=self.max_program_size,
                max_matrices=max_matrices,
            )
        return plan

    # ------------------------------------------------------------------ #
    def simulate(
        self,
        strategy: RankedStrategy,
        bytes_per_device: Optional[int] = None,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    ) -> SimulationResult:
        """Detailed per-step prediction for one strategy."""
        simulator = ProgramSimulator(self.topology, self.cost_model)
        payload = bytes_per_device if bytes_per_device is not None else 1 << 20
        return simulator.simulate(strategy.program, payload, algorithm)

    def measure(
        self,
        strategy: RankedStrategy,
        bytes_per_device: int,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        num_runs: int = 3,
    ) -> MeasurementResult:
        """Measure one strategy on the flow-level testbed simulator."""
        testbed = TestbedSimulator(self.topology, NoiseModel(seed=self.noise_seed))
        return testbed.measure(strategy.program, bytes_per_device, algorithm, num_runs)

    def verify(self, strategy: RankedStrategy, request: ReductionRequest) -> VerificationReport:
        """Numerically verify that a strategy implements the requested reduction."""
        return verify_against_placement(
            strategy.program, strategy.candidate.placement, request
        )
