"""High-level user-facing API.

:class:`P2` bundles the whole tool the paper describes: give it a machine
topology, a parallelism shape, a reduction request and a payload size, and it
returns every (placement, strategy) candidate ranked by the simulator —
together with helpers to inspect the best few and to verify them numerically.

Example
-------
>>> from repro.api import P2
>>> from repro.topology import a100_system
>>> from repro import ParallelismAxes, ReductionRequest
>>> p2 = P2(a100_system(num_nodes=2))
>>> plan = p2.optimize(ParallelismAxes.of(8, 4), ReductionRequest.over(0),
...                    bytes_per_device=1 << 26)
>>> best = plan.best
>>> best.predicted_seconds <= plan.default_all_reduce().predicted_seconds
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.baselines.allreduce import default_all_reduce
from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.simulator import ProgramSimulator, SimulationResult
from repro.errors import EvaluationError
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.matrix import ParallelismMatrix
from repro.runtime.events import MeasurementResult, TestbedSimulator
from repro.runtime.noise import NoiseModel
from repro.runtime.verification import VerificationReport, verify_against_placement
from repro.synthesis.lowering import LoweredProgram
from repro.synthesis.pipeline import PlacementCandidate, synthesize_all
from repro.topology.topology import MachineTopology
from repro.utils.tabulate import format_table

__all__ = ["RankedStrategy", "OptimizationPlan", "P2"]


@dataclass(frozen=True)
class RankedStrategy:
    """One (parallelism matrix, lowered program) candidate with its predicted time."""

    matrix: ParallelismMatrix
    program: LoweredProgram
    mnemonic: str
    predicted_seconds: float
    is_default_all_reduce: bool
    candidate: PlacementCandidate

    def describe(self) -> str:
        tag = " [default]" if self.is_default_all_reduce else ""
        return (
            f"{self.matrix.describe()} / {self.mnemonic}{tag}: "
            f"{self.predicted_seconds:.4f}s predicted"
        )


@dataclass
class OptimizationPlan:
    """The ranked output of one :meth:`P2.optimize` call."""

    axes: ParallelismAxes
    request: ReductionRequest
    bytes_per_device: int
    algorithm: NCCLAlgorithm
    strategies: List[RankedStrategy]
    candidates: List[PlacementCandidate]

    @property
    def best(self) -> RankedStrategy:
        if not self.strategies:
            raise EvaluationError("the plan contains no strategies")
        return self.strategies[0]

    def top(self, k: int) -> List[RankedStrategy]:
        return self.strategies[: max(k, 0)]

    def strategies_for_matrix(self, matrix: ParallelismMatrix) -> List[RankedStrategy]:
        return [s for s in self.strategies if s.matrix == matrix]

    def default_all_reduce(self, matrix: Optional[ParallelismMatrix] = None) -> RankedStrategy:
        """The default AllReduce strategy (for ``matrix``, or the best-placed one)."""
        defaults = [s for s in self.strategies if s.is_default_all_reduce]
        if matrix is not None:
            defaults = [s for s in defaults if s.matrix == matrix]
        if not defaults:
            raise EvaluationError("no default AllReduce strategy in this plan")
        return min(defaults, key=lambda s: s.predicted_seconds)

    def speedup_over_default(self) -> float:
        """Predicted speedup of the best strategy over the best-placed AllReduce."""
        best = self.best.predicted_seconds
        default = self.default_all_reduce().predicted_seconds
        if best <= 0:
            return 1.0
        return default / best

    def describe(self, top_k: int = 5) -> str:
        rows = [
            [i + 1, s.matrix.describe(), s.mnemonic, s.predicted_seconds,
             "yes" if s.is_default_all_reduce else ""]
            for i, s in enumerate(self.top(top_k))
        ]
        return format_table(
            ["rank", "matrix", "program", "predicted (s)", "default"],
            rows,
            title=(
                f"Top {min(top_k, len(self.strategies))} of {len(self.strategies)} strategies "
                f"({self.algorithm}, {self.bytes_per_device / 1e6:.0f} MB per device)"
            ),
            float_fmt="{:.4f}",
        )


@dataclass
class P2:
    """The end-to-end tool: placement synthesis + strategy synthesis + ranking."""

    topology: MachineTopology
    cost_model: CostModel = field(default_factory=CostModel)
    max_program_size: int = 5
    noise_seed: int = 0

    # ------------------------------------------------------------------ #
    def optimize(
        self,
        axes: ParallelismAxes,
        request: ReductionRequest,
        bytes_per_device: int,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        max_matrices: Optional[int] = None,
    ) -> OptimizationPlan:
        """Synthesize and rank every (placement, strategy) candidate."""
        if bytes_per_device <= 0:
            raise EvaluationError("bytes_per_device must be positive")
        candidates = synthesize_all(
            self.topology.hierarchy,
            axes,
            request,
            max_program_size=self.max_program_size,
            max_matrices=max_matrices,
        )
        simulator = ProgramSimulator(self.topology, self.cost_model)
        strategies: List[RankedStrategy] = []
        for candidate in candidates:
            entries: List[Tuple[LoweredProgram, str, bool]] = []
            baseline = default_all_reduce(candidate.placement, request)
            entries.append((baseline, "AR", True))
            for program in candidate.programs:
                if program.is_default_all_reduce:
                    continue
                entries.append((program.lowered, program.mnemonic, False))
            for lowered, mnemonic, is_default in entries:
                if lowered.num_steps == 0:
                    predicted = 0.0
                else:
                    predicted = simulator.simulate(
                        lowered, bytes_per_device, algorithm
                    ).total_seconds
                strategies.append(
                    RankedStrategy(
                        matrix=candidate.matrix,
                        program=lowered,
                        mnemonic=mnemonic,
                        predicted_seconds=predicted,
                        is_default_all_reduce=is_default,
                        candidate=candidate,
                    )
                )
        strategies.sort(key=lambda s: s.predicted_seconds)
        return OptimizationPlan(
            axes=axes,
            request=request,
            bytes_per_device=bytes_per_device,
            algorithm=algorithm,
            strategies=strategies,
            candidates=candidates,
        )

    # ------------------------------------------------------------------ #
    def simulate(
        self,
        strategy: RankedStrategy,
        bytes_per_device: Optional[int] = None,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    ) -> SimulationResult:
        """Detailed per-step prediction for one strategy."""
        simulator = ProgramSimulator(self.topology, self.cost_model)
        payload = bytes_per_device if bytes_per_device is not None else 1 << 20
        return simulator.simulate(strategy.program, payload, algorithm)

    def measure(
        self,
        strategy: RankedStrategy,
        bytes_per_device: int,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        num_runs: int = 3,
    ) -> MeasurementResult:
        """Measure one strategy on the flow-level testbed simulator."""
        testbed = TestbedSimulator(self.topology, NoiseModel(seed=self.noise_seed))
        return testbed.measure(strategy.program, bytes_per_device, algorithm, num_runs)

    def verify(self, strategy: RankedStrategy, request: ReductionRequest) -> VerificationReport:
        """Numerically verify that a strategy implements the requested reduction."""
        return verify_against_placement(
            strategy.program, strategy.candidate.placement, request
        )
