"""High-level user-facing API.

:class:`P2` bundles the whole tool the paper describes: give it a machine
topology, a parallelism shape, a reduction request and a payload size, and it
returns every (placement, strategy) candidate ranked by the simulator —
together with helpers to inspect the best few and to verify them numerically.

Example
-------
>>> from repro.api import P2
>>> from repro.topology import a100_system
>>> from repro import ParallelismAxes, ReductionRequest
>>> p2 = P2(a100_system(num_nodes=2))
>>> plan = p2.optimize(ParallelismAxes.of(8, 4), ReductionRequest.over(0),
...                    bytes_per_device=1 << 26)
>>> best = plan.best
>>> best.predicted_seconds <= plan.default_all_reduce().predicted_seconds
True
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.baselines.allreduce import default_all_reduce
from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.simulator import ProgramSimulator, SimulationResult
from repro.errors import EvaluationError, ServiceError
from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.matrix import ParallelismMatrix
from repro.hierarchy.placement import DevicePlacement
from repro.obs.recorder import get_recorder
from repro.query import PlanOutcome, PlanQuery
from repro.runtime.events import MeasurementResult, TestbedSimulator
from repro.runtime.noise import NoiseModel
from repro.runtime.verification import VerificationReport, verify_against_placement
from repro.search.driver import SearchDriver, SearchReport
from repro.search.source import CandidateSource, SearchSpace, StrategyEntry
from repro.synthesis.hierarchy import build_synthesis_hierarchy
from repro.synthesis.lowering import LoweredProgram
from repro.synthesis.pipeline import PlacementCandidate, ProgramCandidate
from repro.synthesis.pruning import SearchStatistics
from repro.topology.topology import MachineTopology
from repro.utils.tabulate import format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard; see repro.service
    from repro.service.engine import PlanningService

__all__ = [
    "PLAN_FORMAT_VERSION",
    "RankedStrategy",
    "OptimizationPlan",
    "P2",
    "StrategyEntry",
    "PlanComputation",
    "collect_strategy_entries",
    "evaluate_entries_serial",
    "rank_entries",
    "compute_plan",
]

# v3: plans carry the per-baseline reference times priced by the search
# driver's BaselineSource.  Older envelopes lack them, so they must miss
# (and recompute) rather than be served without per-baseline speedups.
# (v2 added the DSL program "size" next to each lowered program.)
PLAN_FORMAT_VERSION = 3


@dataclass(frozen=True)
class RankedStrategy:
    """One (parallelism matrix, lowered program) candidate with its predicted time.

    ``bytes_per_device`` records the payload of the originating query (the
    prediction is only meaningful for that payload); it is ``None`` only for
    strategies constructed outside the planning pipeline.
    """

    matrix: ParallelismMatrix
    program: LoweredProgram
    mnemonic: str
    predicted_seconds: float
    is_default_all_reduce: bool
    candidate: PlacementCandidate
    bytes_per_device: Optional[int] = None
    size: Optional[int] = None  # DSL program size (instruction count), not steps

    def describe(self) -> str:
        tag = " [default]" if self.is_default_all_reduce else ""
        return (
            f"{self.matrix.describe()} / {self.mnemonic}{tag}: "
            f"{self.predicted_seconds:.4f}s predicted"
        )

    def to_dict(self) -> Dict:
        """JSON-serializable form (matrix + program + prediction + payload)."""
        return {
            "matrix": [list(row) for row in self.matrix.entries],
            "mnemonic": self.mnemonic,
            "predicted_seconds": self.predicted_seconds,
            "is_default_all_reduce": self.is_default_all_reduce,
            "bytes_per_device": self.bytes_per_device,
            "size": self.size,
            "program": self.program.to_dict(),
        }

    @classmethod
    def from_dict(
        cls,
        data: Dict,
        candidate: PlacementCandidate,
        bytes_per_device: Optional[int] = None,
    ) -> "RankedStrategy":
        """Rebuild a strategy from :meth:`to_dict` output (``candidate`` is
        not mutated; it only supplies the placement context).

        ``bytes_per_device`` is a fallback for serialized forms predating the
        per-strategy payload field.
        """
        hierarchy = candidate.matrix.hierarchy
        program = LoweredProgram.from_dict(data["program"], hierarchy.num_devices)
        return cls(
            matrix=candidate.matrix,
            program=program,
            mnemonic=data["mnemonic"],
            predicted_seconds=data["predicted_seconds"],
            is_default_all_reduce=data["is_default_all_reduce"],
            candidate=candidate,
            bytes_per_device=data.get("bytes_per_device") or bytes_per_device,
            size=data.get("size"),
        )


@dataclass
class OptimizationPlan:
    """The ranked output of one :meth:`P2.plan` call.

    ``baselines`` maps each paper baseline priced by the search driver
    (``all_reduce`` / ``hierarchical`` / ``blueconnect``, see
    :class:`repro.search.BaselineSource`) to its predicted seconds at its
    best placement for this plan's payload.  Baselines are reference points,
    not ranked strategies; plans deserialized from pre-v3 envelopes carry an
    empty dict.
    """

    axes: ParallelismAxes
    request: ReductionRequest
    bytes_per_device: int
    algorithm: NCCLAlgorithm
    strategies: List[RankedStrategy]
    candidates: List[PlacementCandidate]
    baselines: Dict[str, float] = field(default_factory=dict)

    @property
    def best(self) -> RankedStrategy:
        if not self.strategies:
            raise EvaluationError("the plan contains no strategies")
        return self.strategies[0]

    def top(self, k: int) -> List[RankedStrategy]:
        return self.strategies[: max(k, 0)]

    def strategies_for_matrix(self, matrix: ParallelismMatrix) -> List[RankedStrategy]:
        return [s for s in self.strategies if s.matrix == matrix]

    def default_all_reduce(self, matrix: Optional[ParallelismMatrix] = None) -> RankedStrategy:
        """The default AllReduce strategy (for ``matrix``, or the best-placed one)."""
        defaults = [s for s in self.strategies if s.is_default_all_reduce]
        if matrix is not None:
            defaults = [s for s in defaults if s.matrix == matrix]
        if not defaults:
            raise EvaluationError("no default AllReduce strategy in this plan")
        return min(defaults, key=lambda s: s.predicted_seconds)

    def speedup_over_default(self) -> float:
        """Predicted speedup of the best strategy over the best-placed AllReduce.

        A zero-step strategy (the reduction groups are singletons, so no
        communication is needed) is predicted at 0.0s; against a default that
        does take time the speedup is infinite, not 1.0.  When the default
        itself is also free the two are equal and the speedup is 1.0.
        """
        best = self.best.predicted_seconds
        default = self.default_all_reduce().predicted_seconds
        if best <= 0:
            return float("inf") if default > 0 else 1.0
        return default / best

    def speedup_over_baseline(self, name: str) -> float:
        """Predicted speedup of the best strategy over a named paper baseline.

        ``name`` is a key of :attr:`baselines`; the zero-cost conventions
        match :meth:`speedup_over_default`.
        """
        if name not in self.baselines:
            raise EvaluationError(
                f"this plan records no {name!r} baseline; available: "
                f"{sorted(self.baselines)}"
            )
        best = self.best.predicted_seconds
        baseline = self.baselines[name]
        if best <= 0:
            return float("inf") if baseline > 0 else 1.0
        return baseline / best

    def describe(self, top_k: int = 5) -> str:
        rows = [
            [i + 1, s.matrix.describe(), s.mnemonic, s.predicted_seconds,
             "yes" if s.is_default_all_reduce else ""]
            for i, s in enumerate(self.top(top_k))
        ]
        return format_table(
            ["rank", "matrix", "program", "predicted (s)", "default"],
            rows,
            title=(
                f"Top {min(top_k, len(self.strategies))} of {len(self.strategies)} strategies "
                f"({self.algorithm}, {self.bytes_per_device / 1e6:.0f} MB per device)"
            ),
            float_fmt="{:.4f}",
        )

    # ------------------------------------------------------------------ #
    # Serialization — any caller can persist and restore a ranked plan; the
    # service's plan cache (repro.service.cache) stores exactly this form.
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """Serialize the plan to a JSON-compatible dict (``format_version`` gated)."""
        hierarchy = self.candidates[0].matrix.hierarchy if self.candidates else None
        if hierarchy is None and self.strategies:
            hierarchy = self.strategies[0].matrix.hierarchy
        if hierarchy is None:
            raise ServiceError("cannot serialize an empty optimization plan")
        return {
            "format_version": PLAN_FORMAT_VERSION,
            "hierarchy": {
                "names": list(hierarchy.names),
                "cardinalities": list(hierarchy.cardinalities),
            },
            "axes": {"sizes": list(self.axes.sizes), "names": list(self.axes.names)},
            "request": {"axes": list(self.request.axes)},
            "bytes_per_device": self.bytes_per_device,
            "algorithm": self.algorithm.value,
            "candidates": [
                {
                    "matrix": [list(row) for row in candidate.matrix.entries],
                    "synthesis_seconds": candidate.synthesis_seconds,
                }
                for candidate in self.candidates
            ],
            "strategies": [strategy.to_dict() for strategy in self.strategies],
            "baselines": {
                name: seconds for name, seconds in sorted(self.baselines.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "OptimizationPlan":
        """Reconstruct a plan from :meth:`to_dict` output.

        The ranking — strategy order, matrices, mnemonics, lowered programs
        and predicted times — is reproduced exactly.  Candidates are rebuilt
        with a fresh synthesis hierarchy (a cheap pure function of matrix +
        request) and ``synthesis=None``; their program lists mirror the
        ranked strategies.
        """
        version = data.get("format_version")
        if version != PLAN_FORMAT_VERSION:
            raise ServiceError(
                f"unsupported plan format version {version!r} (expected {PLAN_FORMAT_VERSION})"
            )
        hierarchy = SystemHierarchy.from_cardinalities(
            data["hierarchy"]["cardinalities"], tuple(data["hierarchy"]["names"])
        )
        axes = ParallelismAxes(
            tuple(data["axes"]["sizes"]), tuple(data["axes"]["names"])
        )
        request = ReductionRequest(tuple(data["request"]["axes"]))
        algorithm = NCCLAlgorithm(data["algorithm"])
        bytes_per_device = data["bytes_per_device"]

        candidates: List[PlacementCandidate] = []
        by_entries: Dict[Tuple[Tuple[int, ...], ...], PlacementCandidate] = {}

        def _candidate_for(
            entries: Tuple[Tuple[int, ...], ...], synthesis_seconds: float = 0.0
        ) -> PlacementCandidate:
            if entries not in by_entries:
                matrix = ParallelismMatrix(hierarchy, axes, entries)
                candidate = PlacementCandidate(
                    matrix=matrix,
                    placement=DevicePlacement(matrix),
                    hierarchy=build_synthesis_hierarchy(matrix, request),
                    synthesis=None,
                    programs=[],
                    synthesis_seconds=synthesis_seconds,
                )
                by_entries[entries] = candidate
                candidates.append(candidate)
            return by_entries[entries]

        for entry in data["candidates"]:
            matrix_entries = tuple(tuple(int(x) for x in row) for row in entry["matrix"])
            _candidate_for(matrix_entries, entry["synthesis_seconds"])

        strategies: List[RankedStrategy] = []
        for entry in data["strategies"]:
            candidate = _candidate_for(
                tuple(tuple(int(x) for x in row) for row in entry["matrix"])
            )
            strategy = RankedStrategy.from_dict(
                entry, candidate, bytes_per_device=bytes_per_device
            )
            # The candidates here are freshly built above, so mirroring the
            # ranked strategies into their program lists cannot accumulate
            # duplicates across calls.
            candidate.programs.append(
                ProgramCandidate(
                    lowered=strategy.program,
                    mnemonic=strategy.mnemonic,
                    size=(
                        strategy.size
                        if strategy.size is not None
                        else strategy.program.num_steps
                    ),
                    is_default_all_reduce=strategy.is_default_all_reduce,
                )
            )
            strategies.append(strategy)

        return cls(
            axes=axes,
            request=request,
            bytes_per_device=bytes_per_device,
            algorithm=algorithm,
            strategies=strategies,
            candidates=candidates,
            baselines=dict(data.get("baselines", {})),
        )


def _profile_counters(simulator: Optional[ProgramSimulator]) -> Tuple[int, int]:
    """(hits, misses) of a simulator's profile cache; zeros when there is none."""
    if simulator is None:
        return 0, 0
    return simulator.profile_hits, simulator.profile_misses


# StrategyEntry now lives in repro.search.source (the entry stream is the
# search package's currency); it stays importable from here for callers of
# the eager helpers below.


def collect_strategy_entries(
    candidates: Sequence[PlacementCandidate], request: ReductionRequest
) -> List[StrategyEntry]:
    """Flatten placement candidates into the evaluation-order entry list."""
    entries: List[StrategyEntry] = []
    for candidate in candidates:
        baseline = default_all_reduce(candidate.placement, request)
        entries.append(StrategyEntry(candidate, baseline, "AR", True, 1))
        for program in candidate.programs:
            if program.is_default_all_reduce:
                continue
            entries.append(
                StrategyEntry(
                    candidate, program.lowered, program.mnemonic, False, program.size
                )
            )
    return entries


def evaluate_entries_serial(
    entries: Sequence[StrategyEntry],
    topology: MachineTopology,
    cost_model: CostModel,
    bytes_per_device: int,
    algorithm: NCCLAlgorithm,
    simulator: Optional[ProgramSimulator] = None,
) -> List[float]:
    """Predicted seconds per entry, computed in-process (zero-step programs are free).

    Entries whose lowered programs share a :meth:`LoweredProgram.signature`
    are simulated once — the signature is the communication pattern, so the
    predicted time is the same float either way.  Pass a ``simulator`` bound
    to the same topology and cost model to reuse its compiled-profile cache
    across calls (e.g. across a payload ladder); otherwise a fresh one is
    used and its cache is discarded with it.
    """
    if simulator is None:
        simulator = ProgramSimulator(topology, cost_model)
    predicted = [0.0] * len(entries)
    first_with_signature: Dict[Tuple, int] = {}
    for i, entry in enumerate(entries):
        if entry.lowered.num_steps == 0:
            continue
        # num_devices is part of the key: signature() only records the
        # groups, but chunk fractions depend on the device count, and a
        # mismatched program must still reach simulate() to be rejected.
        signature = (entry.lowered.num_devices, entry.lowered.signature())
        duplicate_of = first_with_signature.get(signature)
        if duplicate_of is not None:
            predicted[i] = predicted[duplicate_of]
            continue
        first_with_signature[signature] = i
        predicted[i] = simulator.simulate(
            entry.lowered, bytes_per_device, algorithm
        ).total_seconds
    return predicted


@dataclass
class PlanComputation:
    """Everything one cold-path :func:`compute_plan` run produced.

    ``report`` and ``statistics`` are the search-driver and synthesizer
    provenance the :class:`~repro.query.PlanOutcome` surfaces (see
    ``PlanOutcome.provenance()``); the timing split matches the historical
    contract (synthesis = candidate enumeration + program synthesis,
    evaluation = pricing, interleaved by the streaming driver but accounted
    separately).
    """

    plan: "OptimizationPlan"
    synthesis_seconds: float
    evaluation_seconds: float
    report: SearchReport
    statistics: SearchStatistics

    def search_dict(self) -> Dict[str, Any]:
        return self.report.to_dict()

    def statistics_dict(self) -> Dict[str, Any]:
        return self.statistics.to_dict()


def compute_plan(
    topology: MachineTopology,
    cost_model: CostModel,
    query: PlanQuery,
    evaluator=None,
    node_limit: int = 500_000,
    validate: bool = True,
    simulator: Optional[ProgramSimulator] = None,
    sources: Optional[Sequence[CandidateSource]] = None,
    recorder=None,
) -> PlanComputation:
    """The cold-path pipeline shared by :meth:`P2.plan` and the service.

    Runs the streaming :class:`~repro.search.SearchDriver` over the query's
    candidate sources (``sources`` overrides the default baseline+synthesis
    pair; see :func:`repro.search.default_sources`), prices entries through
    ``evaluator`` — any object with an ``evaluate(programs, bytes_per_device,
    algorithm)`` method, e.g. a
    :class:`~repro.service.parallel.ParallelEvaluator` — or serially on the
    caller-owned ``simulator`` (whose compiled-profile cache then persists
    across calls), and ranks the survivors.  Keeping this in one place is
    what makes the service's fingerprint-keyed cache sound: both entry
    points compute plans from the same inputs the same way.

    Without a search budget on the query the result is identical to the
    historical exhaustive pipeline; with one
    (:attr:`~repro.query.PlanQuery.max_candidates` /
    :attr:`~repro.query.PlanQuery.time_budget_s`) enumeration stops at the
    budget and lower-bound pruning drops provably non-optimal candidates —
    losslessly for the best strategy.

    ``recorder`` routes the driver's search spans and counters into a
    specific telemetry recorder (:mod:`repro.obs`); the process-wide one is
    used when omitted.

    A ``query.shards > 1`` routes the search through the
    :class:`~repro.search.sharded.ShardedSearchDriver` — the placement
    candidates are partitioned across worker processes that share a
    branch-and-bound incumbent (see :mod:`repro.search.sharded`).  Exhaustive
    sharded plans are bit-identical to ``shards=1``; sharding is exclusive
    with ``evaluator`` (two process pools pricing one search would fight
    over the same cores).
    """
    if query.shards > 1:
        if evaluator is not None:
            raise EvaluationError(
                f"shards={query.shards} cannot be combined with a candidate "
                "evaluator: sharded search runs its own worker processes "
                "(drop the evaluator/n_workers, or plan with shards=1)"
            )
        from repro.search.sharded import ShardedSearchDriver

        driver = ShardedSearchDriver(
            topology,
            cost_model,
            shards=query.shards,
            simulator=simulator,
            recorder=recorder,
        )
    else:
        driver = SearchDriver(
            topology,
            cost_model,
            simulator=simulator,
            evaluator=evaluator,
            recorder=recorder,
        )
    space = SearchSpace(
        topology=topology,
        cost_model=cost_model,
        query=query,
        node_limit=node_limit,
        validate=validate,
    )
    result = driver.run(space, sources=sources)
    plan = OptimizationPlan(
        axes=query.axes,
        request=query.request,
        bytes_per_device=query.bytes_per_device,
        algorithm=query.algorithm,
        strategies=rank_entries(
            result.entries, result.predicted, bytes_per_device=query.bytes_per_device
        ),
        candidates=result.candidates,
        baselines=result.baselines,
    )
    return PlanComputation(
        plan=plan,
        synthesis_seconds=result.synthesis_seconds,
        evaluation_seconds=result.evaluation_seconds,
        report=result.report,
        statistics=result.statistics,
    )


def rank_entries(
    entries: Sequence[StrategyEntry],
    predicted: Sequence[float],
    bytes_per_device: Optional[int] = None,
) -> List[RankedStrategy]:
    """Pair entries with their predicted times and stable-sort into a ranking.

    ``bytes_per_device`` stamps each strategy with the payload the times were
    predicted for, so downstream tools (:meth:`P2.simulate`) never guess it.
    """
    if len(entries) != len(predicted):
        raise EvaluationError(
            f"{len(predicted)} predictions for {len(entries)} strategy entries"
        )
    strategies = [
        RankedStrategy(
            matrix=entry.candidate.matrix,
            program=entry.lowered,
            mnemonic=entry.mnemonic,
            predicted_seconds=seconds,
            is_default_all_reduce=entry.is_default_all_reduce,
            candidate=entry.candidate,
            bytes_per_device=bytes_per_device,
            size=entry.size,
        )
        for entry, seconds in zip(entries, predicted)
    ]
    strategies.sort(key=lambda s: s.predicted_seconds)
    return strategies


@dataclass
class P2:
    """The end-to-end tool: placement synthesis + strategy synthesis + ranking.

    :meth:`plan` is the primary entry point — it speaks the
    :class:`~repro.query.PlanQuery` / :class:`~repro.query.PlanOutcome`
    object model shared with the planning service (both satisfy the
    :class:`~repro.query.Planner` protocol and produce identical rankings
    for the same query).  :meth:`optimize` is the historical loose-argument
    signature, kept as a thin shim over :meth:`plan`.
    """

    topology: MachineTopology
    cost_model: CostModel = field(default_factory=CostModel)
    max_program_size: int = 5
    noise_seed: int = 0
    validate_lowering: bool = True
    node_limit: int = 500_000
    _simulator: Optional[ProgramSimulator] = field(
        default=None, init=False, repr=False, compare=False
    )
    _payload_ladder: Optional[Tuple[float, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def set_payload_ladder(self, payloads=None) -> None:
        """Install (or clear) the simulator's payload-ladder memo.

        Sweeps that re-plan the same shapes across a payload ladder call
        this with the full ladder before the first rung; the simulator then
        prices each compiled signature for the *entire* ladder in one
        vectorized batch and answers later rungs from the memo (see
        :meth:`~repro.cost.simulator.ProgramSimulator.set_payload_ladder`).
        The ladder survives simulator rebuilds on topology/cost-model
        reassignment.
        """
        self._payload_ladder = tuple(payloads) if payloads is not None else None
        self.simulator.set_payload_ladder(self._payload_ladder)

    @property
    def simulator(self) -> ProgramSimulator:
        """This tool's simulator, created lazily and kept for the tool's life.

        Sharing one simulator across :meth:`plan` calls is what makes payload
        ladders cheap: the compiled-profile cache keyed by program signature
        survives between queries, so re-pricing a known program at a new
        payload skips semantics and contention analysis entirely.  If the
        tool's ``topology`` or ``cost_model`` fields are reassigned, the
        simulator (and its cache) is rebuilt so predictions never come from
        stale bindings.
        """
        simulator = self._simulator
        if (
            simulator is None
            or simulator.topology != self.topology
            or simulator.cost_model != self.cost_model
        ):
            simulator = ProgramSimulator(self.topology, self.cost_model)
            if self._payload_ladder is not None:
                simulator.set_payload_ladder(self._payload_ladder)
            self._simulator = simulator
        return simulator

    # ------------------------------------------------------------------ #
    def plan(
        self,
        query: PlanQuery,
        *,
        service: Optional["PlanningService"] = None,
        n_workers: Optional[int] = None,
        evaluator=None,
        sources: Optional[Sequence[CandidateSource]] = None,
    ) -> PlanOutcome:
        """Answer one :class:`PlanQuery` with a :class:`PlanOutcome`.

        Parameters
        ----------
        service:
            Opt-in: route the query through a
            :class:`~repro.service.engine.PlanningService` (plan caching,
            request stats, optional worker pool).  The service must be bound
            to this tool's topology and cost model; the query's own search
            limits (``max_program_size``, ``max_matrices``, candidate/time
            budgets) are honoured by the service, so no agreement on them is
            required.
        n_workers:
            Opt-in: fan candidate simulation out over a process pool of this
            size (``service`` takes precedence; the service manages its own
            pool).  The ranking is identical to the serial path.
        evaluator:
            Opt-in: an existing evaluator (e.g. a shared
            :class:`~repro.service.parallel.ParallelEvaluator`) to price the
            candidates with; takes precedence over ``n_workers``.
        sources:
            Opt-in: override the candidate sources searched (default:
            baselines + full synthesis, :func:`repro.search.default_sources`).
            Prepend a :class:`~repro.search.PinnedPlanSource` to seed the
            branch-and-bound incumbent from a known-good plan, or append a
            custom :class:`~repro.search.CandidateSource`.  Not available
            through a ``service`` — custom sources change what a query means,
            which would poison the fingerprint-keyed plan cache.
        """
        if service is not None:
            if sources is not None:
                raise EvaluationError(
                    "custom candidate sources cannot be routed through a "
                    "planning service: its cache keys queries by fingerprint, "
                    "which does not cover the source list"
                )
            if not service.compatible_with(self.topology):
                raise EvaluationError(
                    f"planning service is bound to topology "
                    f"{service.topology.name!r}, not this tool's {self.topology.name!r}"
                )
            if service.cost_model != self.cost_model:
                raise EvaluationError(
                    "planning service uses a different cost model than this "
                    "tool; it would return plans ranked under different "
                    "assumptions"
                )
            # No max_program_size check: the service honours the query's own
            # search limits, so both routes compute the same plan.
            return service.plan(query)

        from repro.service.fingerprint import plan_query_fingerprint

        if query.shards > 1 and (
            evaluator is not None or (n_workers is not None and n_workers > 1)
        ):
            raise EvaluationError(
                f"shards={query.shards} cannot be combined with "
                "n_workers/evaluator: sharded search runs its own worker "
                "processes (pick one parallelism axis)"
            )
        start = time.perf_counter()
        recorder = get_recorder()
        with recorder.span("plan") as root:
            if evaluator is None and n_workers is not None and n_workers > 1:
                from repro.service.parallel import ParallelEvaluator

                with ParallelEvaluator(
                    self.topology, self.cost_model, n_workers, recorder=recorder
                ) as pool:
                    hits_before, misses_before = pool.profile_counters()
                    computation = compute_plan(
                        self.topology,
                        self.cost_model,
                        query,
                        evaluator=pool,
                        node_limit=self.node_limit,
                        validate=self.validate_lowering,
                        sources=sources,
                        recorder=recorder,
                    )
                    hits_after, misses_after = pool.profile_counters()
            else:
                # Both the external-evaluator path and the serial path account
                # profile-cache traffic on the simulator that actually priced the
                # candidates (the evaluator's own, or this tool's shared one).
                simulator = (
                    getattr(evaluator, "simulator", None)
                    if evaluator is not None
                    else self.simulator
                )
                hits_before, misses_before = _profile_counters(simulator)
                computation = compute_plan(
                    self.topology,
                    self.cost_model,
                    query,
                    evaluator=evaluator,
                    node_limit=self.node_limit,
                    validate=self.validate_lowering,
                    simulator=None if evaluator is not None else simulator,
                    sources=sources,
                    recorder=recorder,
                )
                hits_after, misses_after = _profile_counters(simulator)
            if evaluator is not None:
                workers = getattr(evaluator, "n_workers", 1)
            elif n_workers is not None and n_workers > 1:
                workers = n_workers
            else:
                # A sharded search is its own parallelism: report the shard
                # width as the worker count the plan was computed with.
                workers = query.shards if query.shards > 1 else 1
            return PlanOutcome(
                query=query,
                plan=computation.plan,
                synthesis_seconds=computation.synthesis_seconds,
                evaluation_seconds=computation.evaluation_seconds,
                total_seconds=time.perf_counter() - start,
                fingerprint=plan_query_fingerprint(self.topology, query, self.cost_model),
                cache_tier=None,
                n_workers=workers,
                profile_hits=hits_after - hits_before,
                profile_misses=misses_after - misses_before,
                search=computation.search_dict(),
                synthesis_stats=computation.statistics_dict(),
                trace_id=root.trace_id,
            )

    def plan_many(
        self,
        queries: Sequence[PlanQuery],
        *,
        n_workers: Optional[int] = None,
    ) -> List[PlanOutcome]:
        """Answer a batch of queries, in order (one shared pool when parallel)."""
        if n_workers is not None and n_workers > 1:
            from repro.service.parallel import ParallelEvaluator

            with ParallelEvaluator(self.topology, self.cost_model, n_workers) as pool:
                return [self.plan(query, evaluator=pool) for query in queries]
        return [self.plan(query) for query in queries]

    # ------------------------------------------------------------------ #
    def optimize(
        self,
        axes: ParallelismAxes,
        request: ReductionRequest,
        bytes_per_device: int,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        max_matrices: Optional[int] = None,
        service: Optional["PlanningService"] = None,
        n_workers: Optional[int] = None,
    ) -> OptimizationPlan:
        """Synthesize and rank every (placement, strategy) candidate.

        .. deprecated::
            This is the pre-:class:`PlanQuery` loose-argument signature,
            kept only for backward compatibility.  Build a
            :class:`~repro.query.PlanQuery` and call :meth:`plan` instead —
            it returns the same plan plus timings, search provenance and
            per-baseline speedups, and is the only signature new search
            features (candidate budgets, pinned sources) are added to.
        """
        warnings.warn(
            "P2.optimize is deprecated; build a PlanQuery and call P2.plan "
            "(the returned PlanOutcome's .plan is this method's return value)",
            DeprecationWarning,
            stacklevel=2,
        )
        if service is not None and service.max_program_size != self.max_program_size:
            # Historical contract of this signature: the tool and the service
            # must agree on the search limit.  (The query-based plan() route
            # is laxer — the service honours each query's own limits.)
            raise EvaluationError(
                "planning service uses a different max_program_size than this "
                "tool; it would return plans ranked under different assumptions"
            )
        query = PlanQuery(
            axes=axes,
            request=request,
            bytes_per_device=bytes_per_device,
            algorithm=algorithm,
            max_matrices=max_matrices,
            max_program_size=self.max_program_size,
        )
        return self.plan(query, service=service, n_workers=n_workers).plan

    # ------------------------------------------------------------------ #
    def simulate(
        self,
        strategy: RankedStrategy,
        bytes_per_device: Optional[int] = None,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    ) -> SimulationResult:
        """Detailed per-step prediction for one strategy.

        When ``bytes_per_device`` is omitted the payload recorded on the
        strategy (from its originating query) is used; a strategy that never
        went through the planning pipeline carries no payload, in which case
        the payload must be passed explicitly.
        """
        payload = (
            bytes_per_device if bytes_per_device is not None else strategy.bytes_per_device
        )
        if payload is None:
            raise EvaluationError(
                "this strategy records no originating payload; pass "
                "bytes_per_device explicitly to simulate it"
            )
        # The shared simulator: a strategy that came out of this tool's own
        # planning run re-prices its cached profile instead of recompiling.
        return self.simulator.simulate(strategy.program, payload, algorithm)

    def measure(
        self,
        strategy: RankedStrategy,
        bytes_per_device: int,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        num_runs: int = 3,
    ) -> MeasurementResult:
        """Measure one strategy on the flow-level testbed simulator."""
        testbed = TestbedSimulator(self.topology, NoiseModel(seed=self.noise_seed))
        return testbed.measure(strategy.program, bytes_per_device, algorithm, num_runs)

    def verify(self, strategy: RankedStrategy, request: ReductionRequest) -> VerificationReport:
        """Numerically verify that a strategy implements the requested reduction."""
        return verify_against_placement(
            strategy.program, strategy.candidate.placement, request
        )
