"""Exporters for recorder snapshots: Chrome trace JSON, JSONL, text summary.

All three exporters consume the same :class:`~repro.obs.recorder.RecorderSnapshot`:

* :func:`chrome_trace` — the Chrome trace-event format (``traceEvents`` with
  complete ``"X"`` events), loadable directly in Perfetto or
  ``chrome://tracing``.  The full snapshot dict rides along under a
  top-level ``"snapshot"`` key (the format ignores unknown top-level keys),
  so one ``--trace-out`` file serves both the timeline viewer and
  ``repro.cli stats``.
* :func:`jsonl_events` — one JSON object per line: finished spans first,
  then counter/gauge/histogram events; greppable and streamable.
* :func:`render_summary` — a plain-text table of counters, gauges and
  latency percentiles (p50/p90/p99 from the mergeable histograms).

:func:`load_snapshot` is the inverse seam: it accepts a bare snapshot dict,
a Chrome-trace file with an embedded snapshot, or a JSONL stream, so the
``stats`` CLI can pretty-print whatever a previous run wrote.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.obs.recorder import (
    SNAPSHOT_SCHEMA,
    Histogram,
    RecorderSnapshot,
    SpanRecord,
)

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_events",
    "write_jsonl",
    "render_summary",
    "load_snapshot",
]


# --------------------------------------------------------------------------- #
# Chrome trace-event JSON
# --------------------------------------------------------------------------- #
def _span_timestamps_us(spans: List[SpanRecord]) -> Dict[str, float]:
    """Microsecond timestamps per span, monotonic-aligned within each pid.

    Same-pid spans are placed on a shared monotonic axis (anchored at that
    pid's earliest span) so in-process nesting is exact to perf_counter
    resolution; the anchors themselves come from wall time, which aligns
    different processes to within clock skew.
    """
    bases: Dict[int, tuple] = {}
    for span in spans:
        base = bases.get(span.pid)
        if base is None or span.start_mono_s < base[1]:
            bases[span.pid] = (span.start_wall_s, span.start_mono_s)
    timestamps: Dict[str, float] = {}
    for span in spans:
        base_wall, base_mono = bases[span.pid]
        timestamps[span.span_id] = (
            base_wall + (span.start_mono_s - base_mono)
        ) * 1e6
    return timestamps


def chrome_trace(snapshot: RecorderSnapshot) -> Dict[str, Any]:
    """Render a snapshot as a Chrome trace-event JSON object."""
    timestamps = _span_timestamps_us(snapshot.spans)
    events = []
    for span in snapshot.spans:
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key, value in span.attrs.items():
            args[key] = value
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": timestamps[span.span_id],
                "dur": span.duration_s * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            }
        )
    events.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        # Full snapshot piggybacks on the trace file; the trace-event format
        # ignores unknown top-level keys, and `repro.cli stats` reads it back.
        "snapshot": snapshot.to_dict(),
    }


def write_chrome_trace(
    snapshot: RecorderSnapshot, path: Union[str, Path]
) -> Path:
    """Write the Chrome trace for ``snapshot`` to ``path``; return the path."""
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(snapshot), indent=2))
    return path


# --------------------------------------------------------------------------- #
# JSONL event stream
# --------------------------------------------------------------------------- #
def jsonl_events(snapshot: RecorderSnapshot) -> Iterator[Dict[str, Any]]:
    """Yield the snapshot as a stream of per-line JSON event objects."""
    yield {"event": "meta", "schema": SNAPSHOT_SCHEMA, "dropped_spans": snapshot.dropped_spans}
    for span in sorted(snapshot.spans, key=lambda s: (s.pid, s.start_mono_s)):
        record = span.to_dict()
        record["event"] = "span"
        yield record
    for name, value in sorted(snapshot.counters.items()):
        yield {"event": "counter", "name": name, "value": value}
    for name, value in sorted(snapshot.gauges.items()):
        yield {"event": "gauge", "name": name, "value": value}
    for name, histogram in sorted(snapshot.histograms.items()):
        record = histogram.to_dict()
        record["event"] = "histogram"
        record["name"] = name
        yield record


def write_jsonl(snapshot: RecorderSnapshot, path: Union[str, Path]) -> Path:
    """Write the JSONL event stream for ``snapshot`` to ``path``."""
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for event in jsonl_events(snapshot):
            handle.write(json.dumps(event) + "\n")
    return path


# --------------------------------------------------------------------------- #
# Plain-text summary
# --------------------------------------------------------------------------- #
def _format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.1f}us"


def _render_serving_section(snapshot: RecorderSnapshot) -> List[str]:
    """Shed rates and per-tenant counters, when a daemon/loadgen run is present.

    The serving layer names its counters ``serve.*`` (the daemon side) and
    ``loadgen.*`` (the traffic side), with per-tenant detail under
    ``<side>.tenant.<name>.<metric>``; this section distills the ones an
    operator reads first: volume, shed rate, rate-limit refusals, tenants.
    """
    counters = snapshot.counters
    lines: List[str] = []
    for side, volume_name in (("serve", "serve.requests"), ("loadgen", "loadgen.sent")):
        volume = counters.get(volume_name)
        if volume is None:
            continue
        shed = counters.get(f"{side}.shed", 0)
        shed_rate = shed / volume if volume else 0.0
        summary = (
            f"  {side}: {volume} requests, {counters.get(f'{side}.ok', 0)} ok, "
            f"{shed} shed ({shed_rate * 100:.1f}%)"
        )
        limited = counters.get(f"{side}.rate_limited", 0)
        if limited:
            summary += f", {limited} rate-limited"
        lines.append(summary)
    tenant_metrics: Dict[str, Dict[str, int]] = {}
    for name, value in counters.items():
        for side in ("serve", "loadgen"):
            prefix = f"{side}.tenant."
            if name.startswith(prefix):
                tenant, _, metric = name[len(prefix):].partition(".")
                if metric:
                    key = f"{side}/{tenant}"
                    tenant_metrics.setdefault(key, {})[metric] = value
    if tenant_metrics:
        lines.append("  tenants:")
        width = max(len(key) for key in tenant_metrics)
        for key in sorted(tenant_metrics):
            detail = "  ".join(
                f"{metric}={value}"
                for metric, value in sorted(tenant_metrics[key].items())
            )
            lines.append(f"    {key.ljust(width)}  {detail}")
    if lines:
        lines.insert(0, "serving:")
    return lines


def render_summary(snapshot: RecorderSnapshot, title: str = "telemetry") -> str:
    """A human-readable summary: counters, gauges, latency percentiles.

    When the snapshot carries serving-layer telemetry (a daemon run, a
    loadgen run, or their merge) a ``serving:`` section distills shed rates
    and per-tenant traffic above the raw counter dump.
    """
    lines = [f"== {title} =="]
    lines.extend(_render_serving_section(snapshot))
    if snapshot.counters:
        lines.append("counters:")
        width = max(len(name) for name in snapshot.counters)
        for name in sorted(snapshot.counters):
            lines.append(f"  {name.ljust(width)}  {snapshot.counters[name]}")
    if snapshot.gauges:
        lines.append("gauges:")
        width = max(len(name) for name in snapshot.gauges)
        for name in sorted(snapshot.gauges):
            lines.append(f"  {name.ljust(width)}  {snapshot.gauges[name]:g}")
    if snapshot.histograms:
        lines.append("latency (count / mean / p50 / p90 / p99 / max):")
        width = max(len(name) for name in snapshot.histograms)
        for name in sorted(snapshot.histograms):
            histogram = snapshot.histograms[name]
            lines.append(
                f"  {name.ljust(width)}  {histogram.count:>6}  "
                f"{_format_seconds(histogram.mean):>10}  "
                f"{_format_seconds(histogram.percentile(0.50)):>10}  "
                f"{_format_seconds(histogram.percentile(0.90)):>10}  "
                f"{_format_seconds(histogram.percentile(0.99)):>10}  "
                f"{_format_seconds(histogram.max):>10}"
            )
    lines.append(
        f"spans: {len(snapshot.spans)} recorded"
        + (f", {snapshot.dropped_spans} dropped" if snapshot.dropped_spans else "")
    )
    traces = {span.trace_id for span in snapshot.spans}
    if traces:
        lines.append(f"traces: {len(traces)}")
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Loading exported telemetry back
# --------------------------------------------------------------------------- #
def _snapshot_from_jsonl(lines: List[str]) -> RecorderSnapshot:
    snapshot = RecorderSnapshot()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        event = record.get("event")
        if event == "span":
            snapshot.spans.append(SpanRecord.from_dict(record))
        elif event == "counter":
            snapshot.counters[record["name"]] = int(record["value"])
        elif event == "gauge":
            snapshot.gauges[record["name"]] = float(record["value"])
        elif event == "histogram":
            snapshot.histograms[record["name"]] = Histogram.from_dict(record)
        elif event == "meta":
            snapshot.dropped_spans = int(record.get("dropped_spans", 0))
    return snapshot


def load_snapshot(path: Union[str, Path]) -> RecorderSnapshot:
    """Load a snapshot from any exported form.

    Accepts a bare snapshot dict (``schema: repro.obs/1``), a Chrome trace
    file carrying an embedded ``snapshot`` key, or a JSONL event stream.
    """
    path = Path(path)
    text = path.read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        return _snapshot_from_jsonl(text.splitlines())
    if isinstance(data, dict):
        if data.get("schema") == SNAPSHOT_SCHEMA:
            return RecorderSnapshot.from_dict(data)
        embedded = data.get("snapshot")
        if isinstance(embedded, dict) and embedded.get("schema") == SNAPSHOT_SCHEMA:
            return RecorderSnapshot.from_dict(embedded)
    raise ValueError(
        f"{path} is not a recorder snapshot, a Chrome trace with an embedded "
        "snapshot, or a JSONL event stream"
    )
