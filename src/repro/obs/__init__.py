"""Telemetry spine: counters, mergeable histograms, request traces, exporters.

The subsystem has two halves:

* :mod:`repro.obs.recorder` — the in-process collection layer: a
  thread-safe :class:`Recorder` (counters / gauges / fixed-bucket
  histograms / span trees) and the free :class:`NullRecorder` installed by
  default, so instrumentation left in hot paths costs an attribute lookup
  when telemetry is off.
* :mod:`repro.obs.export` — snapshot consumers: Chrome trace-event JSON
  (Perfetto-loadable), a JSONL event stream, and a plain-text percentile
  summary, plus :func:`load_snapshot` to read any of them back.

Everything is stdlib-only.  See the README "Observability" section for the
end-to-end workflow (``repro.cli ... --trace-out trace.json`` then
``repro.cli stats trace.json``).
"""

from repro.obs.export import (
    chrome_trace,
    jsonl_events,
    load_snapshot,
    render_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.recorder import (
    BUCKET_BOUNDS,
    NULL_RECORDER,
    SNAPSHOT_SCHEMA,
    Histogram,
    NullRecorder,
    Recorder,
    RecorderSnapshot,
    Span,
    SpanRecord,
    Stopwatch,
    current_trace_context,
    get_recorder,
    set_recorder,
    use_recorder,
)

__all__ = [
    "BUCKET_BOUNDS",
    "SNAPSHOT_SCHEMA",
    "Histogram",
    "SpanRecord",
    "Span",
    "Stopwatch",
    "RecorderSnapshot",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "current_trace_context",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_events",
    "write_jsonl",
    "render_summary",
    "load_snapshot",
]
