"""The telemetry recorder: counters, gauges, mergeable histograms and spans.

One :class:`Recorder` instance collects everything a planning process wants
to report about itself:

* **counters** — monotonically increasing integers (cache hits, candidates
  bound-rejected, profiles compiled);
* **gauges** — last-written floats (queue depth, cache size);
* **histograms** — fixed-bucket latency/value distributions.  Every
  histogram in the system shares one bucket ladder
  (:data:`BUCKET_BOUNDS`, log-spaced from 1 µs to ~9 minutes), which is
  what makes merging *associative and commutative*: merging is element-wise
  addition of bucket counts, so snapshots taken in different processes (pool
  workers, future search shards) combine in any order into the same result;
* **spans** — a per-request trace tree.  :meth:`Recorder.span` opens a
  timed section; nesting is tracked through a :mod:`contextvars` context
  variable, so spans opened anywhere down the call stack attach to the
  right parent without threading a handle through every signature.  Each
  finished span records its duration into the ``span.<name>`` histogram
  (that is where the summary table's p50/p99 come from) and is appended to
  the span log for the Chrome-trace / JSONL exporters
  (:mod:`repro.obs.export`).

Telemetry is *disabled by default*: the process-wide recorder
(:func:`get_recorder`) starts as the shared :class:`NullRecorder`, whose
every method is a constant-time no-op and whose ``span()`` returns one
pre-built reusable null context manager — instrumented hot paths pay an
attribute lookup and a no-op call, nothing else
(``benchmarks/bench_telemetry_overhead.py`` gates this).  Enabling telemetry
is :func:`set_recorder`, or the :func:`use_recorder` context manager in
tests.

All mutating operations take the recorder's lock, so one recorder may be
shared by every thread of a process; cross-*process* aggregation goes
through :meth:`Recorder.snapshot` / :meth:`Recorder.merge` (pool workers
record locally and ship snapshots back — the same merge path a sharded
search will use).
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "BUCKET_BOUNDS",
    "SNAPSHOT_SCHEMA",
    "Histogram",
    "SpanRecord",
    "Span",
    "Stopwatch",
    "RecorderSnapshot",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "current_trace_context",
]

SNAPSHOT_SCHEMA = "repro.obs/1"

# One shared bucket ladder for every histogram: upper bounds in seconds,
# doubling from 1 µs to ~9 minutes, plus an implicit +inf overflow bucket.
# Sharing the ladder is the merge contract — two histograms merge by adding
# bucket counts element-wise, which is associative and commutative, so
# snapshots from any number of workers combine in any order.
BUCKET_BOUNDS: Tuple[float, ...] = tuple(1e-6 * (2.0 ** i) for i in range(30))

# Keeping every span of a pathological run would grow without bound; past
# the cap spans are counted (``dropped``) instead of stored.  Histograms and
# counters keep aggregating regardless, so percentiles stay correct.
DEFAULT_MAX_SPANS = 100_000


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass
class Histogram:
    """A fixed-bucket histogram over the shared :data:`BUCKET_BOUNDS` ladder.

    ``counts`` has one entry per bound plus the overflow bucket; ``sum`` /
    ``min`` / ``max`` track the exact moments so merged summaries do not
    lose the extremes to bucket resolution.
    """

    counts: List[int] = field(default_factory=lambda: [0] * (len(BUCKET_BOUNDS) + 1))
    count: int = 0
    sum: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = self._bucket_index(value)
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @staticmethod
    def _bucket_index(value: float) -> int:
        # Binary search over the static bounds (bisect semantics: first
        # bound >= value); the ladder is tiny, but plans observe thousands
        # of values so O(log n) beats a linear scan.
        lo, hi = 0, len(BUCKET_BOUNDS)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= BUCKET_BOUNDS[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def merge(self, other: "Histogram") -> None:
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) by interpolating in its bucket.

        Exact ``min``/``max`` clamp the estimate, so p0/p100 are exact and
        single-observation histograms report the observed value for every
        quantile.
        """
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        rank = q * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cumulative + c >= rank:
                lower = 0.0 if i == 0 else BUCKET_BOUNDS[i - 1]
                upper = (
                    BUCKET_BOUNDS[i]
                    if i < len(BUCKET_BOUNDS)
                    else (self.max if self.max is not None else lower)
                )
                fraction = (rank - cumulative) / c
                estimate = lower + (upper - lower) * max(0.0, min(1.0, fraction))
                if self.min is not None:
                    estimate = max(estimate, self.min)
                if self.max is not None:
                    estimate = min(estimate, self.max)
                return estimate
            cumulative += c
        return self.max if self.max is not None else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "counts": list(self.counts),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        counts = [int(c) for c in data["counts"]]
        if len(counts) != len(BUCKET_BOUNDS) + 1:
            raise ValueError(
                f"histogram has {len(counts)} buckets, expected "
                f"{len(BUCKET_BOUNDS) + 1} (the shared ladder changed?)"
            )
        return cls(
            counts=counts,
            count=int(data["count"]),
            sum=float(data["sum"]),
            min=data.get("min"),
            max=data.get("max"),
        )

    def copy(self) -> "Histogram":
        return Histogram(
            counts=list(self.counts),
            count=self.count,
            sum=self.sum,
            min=self.min,
            max=self.max,
        )


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, ready for export.

    ``start_wall_s`` is UNIX wall time (cross-process alignment);
    ``start_mono_s`` is the process-local monotonic clock (exact in-process
    nesting); ``duration_s`` is monotonic elapsed time.  ``pid`` / ``tid``
    locate the span for the Chrome trace viewer.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start_wall_s: float
    start_mono_s: float
    duration_s: float
    pid: int
    tid: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_wall_s": self.start_wall_s,
            "start_mono_s": self.start_mono_s,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        return cls(
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            name=data["name"],
            start_wall_s=float(data["start_wall_s"]),
            start_mono_s=float(data["start_mono_s"]),
            duration_s=float(data["duration_s"]),
            pid=int(data["pid"]),
            tid=int(data["tid"]),
            attrs=dict(data.get("attrs") or {}),
        )


# The ambient (trace_id, span_id) of the innermost open span in this
# execution context.  A ContextVar — not a thread-local — so spans nest
# correctly through generators and any future asyncio front end.
_CURRENT_SPAN: "contextvars.ContextVar[Optional[Tuple[str, str]]]" = (
    contextvars.ContextVar("repro_obs_current_span", default=None)
)


def current_trace_context() -> Optional[Tuple[str, str]]:
    """The ambient ``(trace_id, span_id)``, or ``None`` outside any span.

    This is what crosses process boundaries: ship it to a worker and open
    the worker's spans with ``_parent=context`` so they attach to the same
    request trace.
    """
    return _CURRENT_SPAN.get()


class Span:
    """One open timed section; use via ``with recorder.span(...) as span:``."""

    __slots__ = (
        "recorder",
        "name",
        "attrs",
        "trace_id",
        "span_id",
        "parent_id",
        "start_wall_s",
        "start_mono_s",
        "_token",
    )

    def __init__(
        self,
        recorder: "Recorder",
        name: str,
        attrs: Dict[str, Any],
        parent: Optional[Tuple[str, str]],
    ) -> None:
        self.recorder = recorder
        self.name = name
        self.attrs = attrs
        if parent is None:
            parent = _CURRENT_SPAN.get()
        if parent is None:
            self.trace_id = _new_id()
            self.parent_id = None
        else:
            self.trace_id, self.parent_id = parent
        self.span_id = _new_id()
        self._token = None
        self.start_wall_s = 0.0
        self.start_mono_s = 0.0

    def set_attr(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute on the open span."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._token = _CURRENT_SPAN.set((self.trace_id, self.span_id))
        self.start_wall_s = time.time()
        self.start_mono_s = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        duration = time.perf_counter() - self.start_mono_s
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        self.recorder._finish_span(self, duration)


class Stopwatch:
    """Accumulates monotonic elapsed time across many short sections.

    The search driver interleaves synthesis pulls and pricing calls; a
    stopwatch per bucket replaces the hand-rolled ``perf_counter`` pairs and
    keeps the synthesis/evaluation split the provenance contract requires.
    Not thread-safe (one stopwatch per driver run).
    """

    __slots__ = ("seconds", "_started")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._started is not None:
            self.seconds += time.perf_counter() - self._started
            self._started = None


@dataclass
class RecorderSnapshot:
    """An immutable-by-convention copy of a recorder's state.

    Snapshots are what travels: across processes (workers ship them back to
    the parent), to disk (the exporters consume them), and into merges
    (:meth:`Recorder.merge`).  ``to_dict`` is the *snapshot schema* — the
    one format ``repro.cli stats``, ``cache stats --json`` and the future
    load harness all speak.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    spans: List[SpanRecord] = field(default_factory=list)
    dropped_spans: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self.histograms.items())
            },
            "spans": [span.to_dict() for span in self.spans],
            "dropped_spans": self.dropped_spans,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RecorderSnapshot":
        schema = data.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unsupported snapshot schema {schema!r} (expected {SNAPSHOT_SCHEMA!r})"
            )
        return cls(
            counters={k: int(v) for k, v in (data.get("counters") or {}).items()},
            gauges={k: float(v) for k, v in (data.get("gauges") or {}).items()},
            histograms={
                name: Histogram.from_dict(entry)
                for name, entry in (data.get("histograms") or {}).items()
            },
            spans=[SpanRecord.from_dict(s) for s in data.get("spans") or []],
            dropped_spans=int(data.get("dropped_spans", 0)),
        )


class Recorder:
    """Thread-safe telemetry sink: counters, gauges, histograms, spans."""

    enabled = True

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: List[SpanRecord] = []
        self._dropped_spans = 0

    # A recorder travels inside objects that may be pickled defensively;
    # the lock does not survive pickling, so it is rebuilt on load.
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram ``name``."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    # ------------------------------------------------------------------ #
    # Spans
    # ------------------------------------------------------------------ #
    def span(
        self, name: str, _parent: Optional[Tuple[str, str]] = None, **attrs: Any
    ) -> Span:
        """Open a timed span; use as a context manager.

        ``_parent`` overrides the ambient parent context — pass a
        :func:`current_trace_context` tuple shipped from another process to
        attach this span to that trace.
        """
        return Span(self, name, attrs, _parent)

    def _finish_span(self, span: Span, duration_s: float) -> None:
        record = SpanRecord(
            trace_id=span.trace_id,
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            start_wall_s=span.start_wall_s,
            start_mono_s=span.start_mono_s,
            duration_s=duration_s,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=span.attrs,
        )
        with self._lock:
            if len(self._spans) < self.max_spans:
                self._spans.append(record)
            else:
                self._dropped_spans += 1
            histogram = self._histograms.get(f"span.{span.name}")
            if histogram is None:
                histogram = self._histograms[f"span.{span.name}"] = Histogram()
            histogram.observe(duration_s)

    # ------------------------------------------------------------------ #
    # Snapshots and merging
    # ------------------------------------------------------------------ #
    def snapshot(self) -> RecorderSnapshot:
        """A consistent copy of everything recorded so far."""
        with self._lock:
            return RecorderSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    name: histogram.copy()
                    for name, histogram in self._histograms.items()
                },
                spans=list(self._spans),
                dropped_spans=self._dropped_spans,
            )

    def drain(self) -> RecorderSnapshot:
        """Snapshot *and reset*, atomically.

        Pool workers call this after each task so every returned snapshot is
        a disjoint delta; merging deltas in any order reproduces the full
        state (the associativity the sharded-search merge path relies on).
        """
        with self._lock:
            snapshot = RecorderSnapshot(
                counters=self._counters,
                gauges=self._gauges,
                histograms=self._histograms,
                spans=self._spans,
                dropped_spans=self._dropped_spans,
            )
            self._counters = {}
            self._gauges = {}
            self._histograms = {}
            self._spans = []
            self._dropped_spans = 0
            return snapshot

    def merge(self, snapshot: RecorderSnapshot) -> None:
        """Fold another recorder's snapshot into this one.

        Counters and histograms add; gauges take the incoming value (last
        write wins, matching :meth:`gauge`); spans append up to the cap.
        Merging is associative, and commutative up to span order and
        conflicting gauge writes.
        """
        with self._lock:
            for name, value in snapshot.counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.gauges.items():
                self._gauges[name] = value
            for name, histogram in snapshot.histograms.items():
                mine = self._histograms.get(name)
                if mine is None:
                    self._histograms[name] = histogram.copy()
                else:
                    mine.merge(histogram)
            for span in snapshot.spans:
                if len(self._spans) < self.max_spans:
                    self._spans.append(span)
                else:
                    self._dropped_spans += 1
            self._dropped_spans += snapshot.dropped_spans

    def clear(self) -> None:
        """Reset every metric and span (the recorder stays enabled)."""
        self.drain()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def counter_value(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def describe(self) -> str:
        with self._lock:
            return (
                f"Recorder({len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, {len(self._histograms)} histograms, "
                f"{len(self._spans)} spans)"
            )


class _NullSpan:
    """The shared no-op span: no ids, no timing, no context mutation."""

    __slots__ = ()

    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Disabled telemetry: every operation is a constant-time no-op.

    Instrumented code holds a recorder attribute and calls it
    unconditionally; with the null recorder each call is one attribute
    lookup plus an empty method, so leaving instrumentation permanently in
    the hot paths is free (gated by ``bench_telemetry_overhead``).
    """

    enabled = False

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def span(
        self, name: str, _parent: Optional[Tuple[str, str]] = None, **attrs: Any
    ) -> _NullSpan:
        return _NULL_SPAN

    def snapshot(self) -> RecorderSnapshot:
        return RecorderSnapshot()

    def drain(self) -> RecorderSnapshot:
        return RecorderSnapshot()

    def merge(self, snapshot: RecorderSnapshot) -> None:
        pass

    def clear(self) -> None:
        pass

    def counter_value(self, name: str) -> int:
        return 0

    def describe(self) -> str:
        return "NullRecorder()"


NULL_RECORDER = NullRecorder()

_GLOBAL_RECORDER = NULL_RECORDER


def get_recorder():
    """The process-wide default recorder (the null recorder until enabled)."""
    return _GLOBAL_RECORDER


def set_recorder(recorder) -> None:
    """Install ``recorder`` as the process-wide default.

    Components capture the default *at construction time* (one attribute on
    the object, so the disabled path stays a lookup away); install the
    recorder before building services, drivers or simulators that should
    report into it.
    """
    global _GLOBAL_RECORDER
    _GLOBAL_RECORDER = recorder


@contextlib.contextmanager
def use_recorder(recorder) -> Iterator[Any]:
    """Temporarily install ``recorder`` as the process default (tests)."""
    previous = get_recorder()
    set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
