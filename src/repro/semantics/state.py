"""Device state matrices and state contexts.

A :class:`DeviceState` is the boolean ``k x k`` matrix of paper Figure 7,
stored as one integer bitmask per row (row ``r`` = chunk ``r``; bit ``c`` set
means device ``c``'s original chunk ``r`` contributes to the value held for
that chunk).  Integer bitmasks keep states hashable — the synthesizer
memoizes visited contexts — and make the disjointness / subset checks of the
Hoare rules single ``&``/``|`` operations.

A :class:`StateContext` maps device indices to states.  Contexts are immutable
value objects; "updating" a context returns a new one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import SemanticsError

__all__ = ["DeviceState", "StateContext"]


@dataclass(frozen=True)
class DeviceState:
    """The data a single device currently holds, as per-chunk contribution masks."""

    num_chunks: int
    rows: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.num_chunks < 1:
            raise SemanticsError(f"num_chunks must be >= 1, got {self.num_chunks}")
        if len(self.rows) != self.num_chunks:
            raise SemanticsError(
                f"state has {len(self.rows)} rows but num_chunks={self.num_chunks}"
            )
        full = (1 << self.num_chunks) - 1
        for r, mask in enumerate(self.rows):
            if mask < 0 or mask & ~full:
                raise SemanticsError(
                    f"row {r} mask {mask:#x} has bits outside the {self.num_chunks} devices"
                )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, num_chunks: int) -> "DeviceState":
        """A device holding no data at all."""
        return cls(num_chunks, tuple([0] * num_chunks))

    @classmethod
    def initial(cls, num_chunks: int, device: int) -> "DeviceState":
        """The initial state of ``device``: every chunk present, contributed only by itself."""
        if not 0 <= device < num_chunks:
            raise SemanticsError(f"device {device} out of range for {num_chunks} devices")
        return cls(num_chunks, tuple([1 << device] * num_chunks))

    @classmethod
    def full(cls, num_chunks: int, contributors: Iterable[int] = None) -> "DeviceState":
        """Every chunk present and reduced over ``contributors`` (default: everyone)."""
        if contributors is None:
            mask = (1 << num_chunks) - 1
        else:
            mask = 0
            for c in contributors:
                if not 0 <= c < num_chunks:
                    raise SemanticsError(f"contributor {c} out of range")
                mask |= 1 << c
        return cls(num_chunks, tuple([mask] * num_chunks))

    @classmethod
    def from_matrix(cls, matrix: Sequence[Sequence[int]]) -> "DeviceState":
        """Build a state from an explicit 0/1 matrix (row = chunk, column = contributor)."""
        num_chunks = len(matrix)
        rows: List[int] = []
        for r, row in enumerate(matrix):
            if len(row) != num_chunks:
                raise SemanticsError(f"state matrices must be square; row {r} is not")
            mask = 0
            for c, bit in enumerate(row):
                if bit not in (0, 1):
                    raise SemanticsError(f"matrix entries must be 0/1, got {bit!r}")
                if bit:
                    mask |= 1 << c
            rows.append(mask)
        return cls(num_chunks, tuple(rows))

    # ------------------------------------------------------------------ #
    # Queries used by the Hoare rules
    # ------------------------------------------------------------------ #
    @property
    def non_empty_rows(self) -> Tuple[int, ...]:
        """Indices of rows with at least one contributor (the paper's ``rows`` function)."""
        return tuple(r for r, mask in enumerate(self.rows) if mask)

    @property
    def num_non_empty_rows(self) -> int:
        return sum(1 for mask in self.rows if mask)

    @property
    def is_empty(self) -> bool:
        return all(m == 0 for m in self.rows)

    def row(self, r: int) -> int:
        return self.rows[r]

    def contributors(self, r: int) -> Tuple[int, ...]:
        """Devices whose original chunk ``r`` is folded into this device's chunk ``r``."""
        mask = self.rows[r]
        return tuple(c for c in range(self.num_chunks) if mask & (1 << c))

    def chunk_fraction(self) -> float:
        """Fraction of the full payload currently materialised on this device.

        Used by the cost model: the payload is split into ``num_chunks`` equal
        chunks, so the bytes a device holds are proportional to the number of
        non-empty rows.
        """
        return len(self.non_empty_rows) / self.num_chunks

    # ------------------------------------------------------------------ #
    # Order / algebra
    # ------------------------------------------------------------------ #
    def union(self, other: "DeviceState") -> "DeviceState":
        """Element-wise OR (the paper's ``⊎`` once disjointness has been checked)."""
        self._check_compatible(other)
        return DeviceState(
            self.num_chunks, tuple(a | b for a, b in zip(self.rows, other.rows))
        )

    def is_subset_of(self, other: "DeviceState") -> bool:
        """Element-wise ``<=`` (the paper's information order on states)."""
        self._check_compatible(other)
        return all((a & ~b) == 0 for a, b in zip(self.rows, other.rows))

    def is_strict_subset_of(self, other: "DeviceState") -> bool:
        return self.is_subset_of(other) and self != other

    def rows_disjoint_with(self, other: "DeviceState") -> bool:
        """True if no chunk has a contributor present in both states."""
        self._check_compatible(other)
        return all((a & b) == 0 for a, b in zip(self.rows, other.rows))

    def row_sets_disjoint_with(self, other: "DeviceState") -> bool:
        """True if the two states have no non-empty row index in common."""
        self._check_compatible(other)
        return not (set(self.non_empty_rows) & set(other.non_empty_rows))

    def _check_compatible(self, other: "DeviceState") -> None:
        if self.num_chunks != other.num_chunks:
            raise SemanticsError(
                f"state size mismatch: {self.num_chunks} vs {other.num_chunks}"
            )

    # ------------------------------------------------------------------ #
    # Presentation / conversion
    # ------------------------------------------------------------------ #
    def to_matrix(self) -> np.ndarray:
        """Return the state as a dense ``uint8`` 0/1 matrix (rows = chunks)."""
        out = np.zeros((self.num_chunks, self.num_chunks), dtype=np.uint8)
        for r, mask in enumerate(self.rows):
            for c in range(self.num_chunks):
                if mask & (1 << c):
                    out[r, c] = 1
        return out

    def describe(self) -> str:
        lines = []
        for r, mask in enumerate(self.rows):
            bits = "".join("1" if mask & (1 << c) else "." for c in range(self.num_chunks))
            lines.append(f"chunk {r}: {bits}")
        return "\n".join(lines)


@dataclass(frozen=True)
class StateContext:
    """States of all devices participating in a synthesis problem."""

    states: Tuple[DeviceState, ...]

    def __post_init__(self) -> None:
        if len(self.states) == 0:
            raise SemanticsError("a state context needs at least one device")
        sizes = {s.num_chunks for s in self.states}
        if len(sizes) != 1:
            raise SemanticsError(f"all states must have the same size, got {sizes}")

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, DeviceState]) -> "StateContext":
        devices = sorted(mapping)
        if devices != list(range(len(devices))):
            raise SemanticsError(
                f"state contexts must cover devices 0..n-1 contiguously, got {devices}"
            )
        return cls(tuple(mapping[d] for d in devices))

    @property
    def num_devices(self) -> int:
        return len(self.states)

    @property
    def num_chunks(self) -> int:
        return self.states[0].num_chunks

    def __getitem__(self, device: int) -> DeviceState:
        return self.states[device]

    def __iter__(self) -> Iterator[DeviceState]:
        return iter(self.states)

    def replace(self, updates: Mapping[int, DeviceState]) -> "StateContext":
        """Return a new context with the given per-device states substituted."""
        new_states = list(self.states)
        for device, state in updates.items():
            if not 0 <= device < self.num_devices:
                raise SemanticsError(f"device {device} out of range")
            if state.num_chunks != self.num_chunks:
                raise SemanticsError("replacement state has the wrong size")
            new_states[device] = state
        return StateContext(tuple(new_states))

    def describe(self) -> str:
        parts = []
        for d, state in enumerate(self.states):
            rows = ",".join(
                f"{r}:{state.row(r):0{self.num_chunks}b}" for r in state.non_empty_rows
            )
            parts.append(f"d{d}{{{rows}}}")
        return " ".join(parts)
