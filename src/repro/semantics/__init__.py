"""Formal semantics of collective operations (paper §3.2).

The state of a device is a boolean ``k x k`` matrix (``k`` = number of
participating devices): row ``r`` describes the ``r``-th data chunk, and bit
``c`` of that row records whether device ``c``'s original chunk ``r`` has been
folded into the value this device currently holds.  Collectives are Hoare
triples over these states: a rule checks a precondition on the group members'
states and produces their post-states.

* :mod:`repro.semantics.state` — :class:`DeviceState` and :class:`StateContext`.
* :mod:`repro.semantics.collectives` — the five collectives and their rules.
* :mod:`repro.semantics.goals` — initial and goal contexts for a reduction.
"""

from repro.semantics.state import DeviceState, StateContext
from repro.semantics.collectives import (
    Collective,
    apply_collective,
    check_collective,
    collective_is_valid,
)
from repro.semantics.goals import (
    all_reduce_goal,
    goal_context,
    initial_context,
    initial_state,
)

__all__ = [
    "DeviceState",
    "StateContext",
    "Collective",
    "apply_collective",
    "check_collective",
    "collective_is_valid",
    "initial_state",
    "initial_context",
    "goal_context",
    "all_reduce_goal",
]
