"""Initial and goal state contexts for a synthesis problem (paper §3.5).

The synthesizer works over ``k`` *virtual devices* — the devices of whatever
synthesis hierarchy is in use.  Initially virtual device ``i`` holds only its
own data (column ``i`` set in every chunk row).  The goal depends on the
grouping the reduction must achieve:

* For the reduction-axis hierarchy (variant (d)) all virtual devices belong to
  one reduction group, so the goal is the full matrix of ones on every device.
* For the whole-system hierarchies (variants (a)–(c)) each device's goal is
  ones in the columns of its own reduction group only.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import SemanticsError
from repro.semantics.state import DeviceState, StateContext

__all__ = ["initial_state", "initial_context", "goal_context", "all_reduce_goal"]


def initial_state(num_devices: int, device: int) -> DeviceState:
    """State of ``device`` before any communication: only its own contribution."""
    return DeviceState.initial(num_devices, device)


def initial_context(num_devices: int) -> StateContext:
    """Context where every device holds exactly its own data."""
    if num_devices < 1:
        raise SemanticsError("need at least one device")
    return StateContext(tuple(DeviceState.initial(num_devices, d) for d in range(num_devices)))


def goal_context(num_devices: int, groups: Sequence[Sequence[int]]) -> StateContext:
    """Goal context for a partition of the devices into reduction groups.

    Each device must end up holding, for every chunk, the reduction over all
    members of its own group.  ``groups`` must partition ``0..num_devices-1``.
    """
    seen: List[int] = []
    states: List[DeviceState] = [None] * num_devices  # type: ignore[list-item]
    for group in groups:
        full = DeviceState.full(num_devices, group)
        for device in group:
            if not 0 <= device < num_devices:
                raise SemanticsError(f"device {device} out of range in goal groups")
            if states[device] is not None:
                raise SemanticsError(f"device {device} appears in more than one goal group")
            states[device] = full
            seen.append(device)
    if len(seen) != num_devices:
        missing = sorted(set(range(num_devices)) - set(seen))
        raise SemanticsError(f"goal groups do not cover devices {missing}")
    return StateContext(tuple(states))


def all_reduce_goal(num_devices: int) -> StateContext:
    """Goal where all devices form a single reduction group (hierarchy (d) case)."""
    return goal_context(num_devices, [list(range(num_devices))])
