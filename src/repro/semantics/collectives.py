"""Hoare-triple semantics of the five collectives (paper Figure 8).

Each rule takes the pre-states of the devices in one reduction group (in group
order; the first device is the root for Reduce / Broadcast) and either raises
:class:`~repro.errors.InvalidCollectiveError` — the step is semantically
invalid — or returns the post-states.

The rules implemented, matching the paper:

``R-AllReduce``
    All members must hold the same set of non-empty chunks, and for every
    chunk the contributor sets must be pairwise disjoint (never reduce the
    same contribution twice).  Every member ends with the union.
``R-ReduceScatter``
    Same precondition, plus the number of non-empty chunks must be divisible
    by the group size.  Member ``t`` keeps the ``t``-th contiguous block of
    the reduced chunks and drops the rest.
``R-AllGather``
    Members must hold pairwise-disjoint, equally-sized chunk sets.  Everyone
    ends with the union.
``R-Reduce``
    Same precondition as AllReduce; the root gets the union, everyone else is
    cleared.
``R-Broadcast``
    Every member's state must be below the root's, and at least one strictly
    below (information must increase).  Everyone ends with the root's state.

The module additionally exposes per-collective *traffic descriptors* used by
the cost model (how many bytes each member sends/receives relative to its
input payload), so that semantics and costing stay in one place per
collective.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence, Tuple

from repro.errors import InvalidCollectiveError, SemanticsError
from repro.semantics.state import DeviceState

__all__ = [
    "Collective",
    "check_collective",
    "apply_collective",
    "collective_is_valid",
    "ALL_COLLECTIVES",
]


class Collective(str, Enum):
    """The collective operations considered by the paper."""

    ALL_REDUCE = "AllReduce"
    REDUCE_SCATTER = "ReduceScatter"
    ALL_GATHER = "AllGather"
    REDUCE = "Reduce"
    BROADCAST = "Broadcast"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def moves_reduced_data(self) -> bool:
        """True for collectives whose output combines (sums) inputs."""
        return self in (Collective.ALL_REDUCE, Collective.REDUCE_SCATTER, Collective.REDUCE)

    @property
    def is_rooted(self) -> bool:
        """True for collectives with a distinguished root device."""
        return self in (Collective.REDUCE, Collective.BROADCAST)


ALL_COLLECTIVES: Tuple[Collective, ...] = (
    Collective.ALL_REDUCE,
    Collective.REDUCE_SCATTER,
    Collective.ALL_GATHER,
    Collective.REDUCE,
    Collective.BROADCAST,
)


# --------------------------------------------------------------------------- #
# Precondition helpers
# --------------------------------------------------------------------------- #
def _check_group(states: Sequence[DeviceState]) -> None:
    if len(states) < 2:
        raise InvalidCollectiveError(
            f"a collective needs a group of at least 2 devices, got {len(states)}"
        )
    sizes = {s.num_chunks for s in states}
    if len(sizes) != 1:
        raise SemanticsError(f"all states in a group must have the same size, got {sizes}")


def _check_equal_rows(states: Sequence[DeviceState], op: Collective) -> Tuple[int, ...]:
    """Return the common non-empty row indices, or raise."""
    rows = states[0].non_empty_rows
    for i, s in enumerate(states[1:], start=1):
        if s.non_empty_rows != rows:
            raise InvalidCollectiveError(
                f"{op}: device 0 holds chunks {rows} but device {i} holds {s.non_empty_rows}"
            )
    if not rows:
        raise InvalidCollectiveError(f"{op}: no device in the group holds any data")
    return rows


def _check_chunkwise_disjoint(states: Sequence[DeviceState], op: Collective) -> None:
    """For each chunk, contributor sets must be pairwise disjoint across the group."""
    num_chunks = states[0].num_chunks
    for r in range(num_chunks):
        seen = 0
        for i, s in enumerate(states):
            mask = s.row(r)
            if mask & seen:
                raise InvalidCollectiveError(
                    f"{op}: chunk {r} would fold the same contribution twice "
                    f"(device {i} overlaps with an earlier group member)"
                )
            seen |= mask
    # Disjointness alone allows the degenerate case where only one member holds
    # data for every chunk; reducing then moves nothing.  Require at least two
    # members with data overall, which together with equal-rows checks above
    # guarantees genuine information increase.
    holders = sum(1 for s in states if not s.is_empty)
    if holders < 2:
        raise InvalidCollectiveError(f"{op}: fewer than two group members hold data")


def _union(states: Sequence[DeviceState]) -> DeviceState:
    result = states[0]
    for s in states[1:]:
        result = result.union(s)
    return result


# --------------------------------------------------------------------------- #
# The rules
# --------------------------------------------------------------------------- #
def _all_reduce(states: Sequence[DeviceState]) -> List[DeviceState]:
    _check_equal_rows(states, Collective.ALL_REDUCE)
    _check_chunkwise_disjoint(states, Collective.ALL_REDUCE)
    result = _union(states)
    return [result] * len(states)


def _reduce_scatter(states: Sequence[DeviceState]) -> List[DeviceState]:
    rows = _check_equal_rows(states, Collective.REDUCE_SCATTER)
    _check_chunkwise_disjoint(states, Collective.REDUCE_SCATTER)
    group_size = len(states)
    if len(rows) % group_size != 0:
        raise InvalidCollectiveError(
            f"ReduceScatter: {len(rows)} chunks are not divisible by group size {group_size}"
        )
    reduced = _union(states)
    per_member = len(rows) // group_size
    post: List[DeviceState] = []
    for t in range(group_size):
        kept = set(rows[t * per_member : (t + 1) * per_member])
        masks = tuple(
            reduced.row(r) if r in kept else 0 for r in range(reduced.num_chunks)
        )
        post.append(DeviceState(reduced.num_chunks, masks))
    return post


def _all_gather(states: Sequence[DeviceState]) -> List[DeviceState]:
    # Pairwise-disjoint row sets.
    seen_rows: set = set()
    lengths = set()
    for i, s in enumerate(states):
        rows = set(s.non_empty_rows)
        if not rows:
            raise InvalidCollectiveError("AllGather: a group member holds no data")
        if rows & seen_rows:
            raise InvalidCollectiveError(
                f"AllGather: device {i} holds chunks also held by an earlier member"
            )
        seen_rows |= rows
        lengths.add(len(rows))
    if len(lengths) != 1:
        raise InvalidCollectiveError(
            f"AllGather: members hold different numbers of chunks: {sorted(lengths)}"
        )
    result = _union(states)
    return [result] * len(states)


def _reduce(states: Sequence[DeviceState]) -> List[DeviceState]:
    _check_equal_rows(states, Collective.REDUCE)
    _check_chunkwise_disjoint(states, Collective.REDUCE)
    result = _union(states)
    empty = DeviceState.empty(states[0].num_chunks)
    return [result] + [empty] * (len(states) - 1)


def _broadcast(states: Sequence[DeviceState]) -> List[DeviceState]:
    root = states[0]
    if root.is_empty:
        raise InvalidCollectiveError("Broadcast: the root device holds no data")
    strictly_below = False
    for i, s in enumerate(states[1:], start=1):
        if not s.is_subset_of(root):
            raise InvalidCollectiveError(
                f"Broadcast: device {i} holds data the root does not (information would be lost)"
            )
        if s.is_strict_subset_of(root):
            strictly_below = True
    if not strictly_below:
        raise InvalidCollectiveError("Broadcast: no device would learn anything new")
    return [root] * len(states)


_RULES = {
    Collective.ALL_REDUCE: _all_reduce,
    Collective.REDUCE_SCATTER: _reduce_scatter,
    Collective.ALL_GATHER: _all_gather,
    Collective.REDUCE: _reduce,
    Collective.BROADCAST: _broadcast,
}


def apply_collective(op: Collective, states: Sequence[DeviceState]) -> List[DeviceState]:
    """Apply ``op`` to the group's pre-states; return post-states or raise.

    ``states`` must be ordered by group position: the first entry is the root
    for rooted collectives.
    """
    _check_group(states)
    return _RULES[op](list(states))


def check_collective(op: Collective, states: Sequence[DeviceState]) -> None:
    """Check the Hoare precondition of ``op`` without computing post-states."""
    apply_collective(op, states)


def collective_is_valid(op: Collective, states: Sequence[DeviceState]) -> bool:
    """Boolean variant of :func:`check_collective`."""
    try:
        apply_collective(op, states)
        return True
    except InvalidCollectiveError:
        return False


# --------------------------------------------------------------------------- #
# Traffic descriptors (consumed by the cost model)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TrafficProfile:
    """How much data one collective moves, relative to the per-device input payload.

    ``input_factor`` and ``output_factor`` describe how the per-device resident
    payload changes (ReduceScatter shrinks it by the group size, AllGather
    grows it, the rest keep it constant).  ``ring_volume_factor`` /
    ``tree_volume_factor`` give the per-device bytes sent on the wire as a
    multiple of the per-device input payload ``n`` for a group of size ``g``
    (classic alpha-beta model factors).
    """

    collective: Collective

    def output_payload(self, input_payload: float, group_size: int) -> float:
        if self.collective == Collective.REDUCE_SCATTER:
            return input_payload / group_size
        if self.collective == Collective.ALL_GATHER:
            return input_payload * group_size
        return input_payload

    def ring_bytes_on_wire(self, input_payload: float, group_size: int) -> float:
        g = group_size
        n = input_payload
        if self.collective == Collective.ALL_REDUCE:
            return 2.0 * (g - 1) / g * n
        if self.collective == Collective.REDUCE_SCATTER:
            return (g - 1) / g * n
        if self.collective == Collective.ALL_GATHER:
            return (g - 1) * n
        # Reduce / Broadcast: pipelined chain moves ~n per device.
        return n

    def tree_bytes_on_wire(self, input_payload: float, group_size: int) -> float:
        n = input_payload
        if self.collective == Collective.ALL_REDUCE:
            return 2.0 * n
        if self.collective == Collective.REDUCE_SCATTER:
            return n
        if self.collective == Collective.ALL_GATHER:
            return (group_size - 1) * n
        return n

    def latency_steps_ring(self, group_size: int) -> int:
        g = group_size
        if self.collective == Collective.ALL_REDUCE:
            return 2 * (g - 1)
        return g - 1

    def latency_steps_tree(self, group_size: int) -> int:
        import math

        depth = max(1, math.ceil(math.log2(max(group_size, 2))))
        if self.collective == Collective.ALL_REDUCE:
            return 2 * depth
        return depth


TRAFFIC_PROFILES = {op: TrafficProfile(op) for op in ALL_COLLECTIVES}
