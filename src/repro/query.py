"""First-class planning queries and outcomes — the currency of the planning API.

The paper's tool is a pure function from a *query* — (parallelism axes,
reduction request, payload, algorithm, search limits) against a fixed
topology — to a ranked plan.  :class:`PlanQuery` makes that query a frozen,
validated, serializable object, and :class:`PlanOutcome` wraps the resulting
:class:`~repro.api.OptimizationPlan` together with its provenance (timings,
fingerprint, cache tier, worker count).

Anything that can answer queries — :class:`repro.api.P2` directly, or a
:class:`repro.service.engine.PlanningService` with its cache and worker
pool — implements the :class:`Planner` protocol::

    outcome = planner.plan(query)            # one query
    outcomes = planner.plan_many(queries)    # a batch

``PlanQuery.to_dict``/``from_dict`` round-trip losslessly through JSON, so
queries travel over files, sockets and cache keys unchanged; the service's
fingerprints (:mod:`repro.service.fingerprint`) are built on exactly this
canonical dict.  ``from_dict`` also accepts the legacy CLI file shape
(``{"axes": [8, 4], "reduce": [0], "bytes": ...}``) and ``from_spec`` parses
the legacy ``AXES:REDUCE[:BYTES[:ALGO]]`` command-line strings, so every
pre-existing transport feeds the same object model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence

from typing import Protocol, runtime_checkable

from repro.cost.nccl import NCCLAlgorithm
from repro.errors import QueryError
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard; see repro.api
    from repro.api import OptimizationPlan, RankedStrategy

__all__ = ["PlanQuery", "PlanOutcome", "Planner"]

DEFAULT_MAX_PROGRAM_SIZE = 5


@dataclass(frozen=True)
class PlanQuery:
    """One planning query: everything the pipeline consumes, nothing else.

    The constructor is forgiving about input shapes — axis/reduction
    sequences are coerced into :class:`ParallelismAxes` /
    :class:`ReductionRequest`, algorithm names into
    :class:`~repro.cost.nccl.NCCLAlgorithm` — and then validates the result,
    so an equal query always has one canonical in-memory form and
    ``PlanQuery.from_dict(q.to_dict()) == q`` holds exactly.
    """

    axes: ParallelismAxes
    request: ReductionRequest
    bytes_per_device: int
    algorithm: NCCLAlgorithm = NCCLAlgorithm.RING
    max_matrices: Optional[int] = None
    max_program_size: int = DEFAULT_MAX_PROGRAM_SIZE
    # Search budget (None = exhaustive).  Setting either one switches the
    # pipeline to the streaming branch-and-bound driver (repro.search):
    # max_candidates caps how many synthesized strategy entries are
    # considered, time_budget_s stops enumeration after a wall-clock budget,
    # and lower-bound pruning drops provably non-optimal candidates.  The
    # best strategy is unaffected by pruning (it is lossless); budgets
    # truncate the tail of the ranking.
    max_candidates: Optional[int] = None
    time_budget_s: Optional[float] = None
    # Cold-path parallelism: partition the placement space across this many
    # worker processes (repro.search.sharded).  Deliberately *not* part of
    # the query's identity — ``compare=False`` keeps it out of equality and
    # hashing, and to_dict() omits it, so fingerprints (and therefore the
    # service's plan cache) are shard-neutral.  That neutrality is sound
    # because exhaustive sharded plans are bit-identical to ``shards=1``
    # (enforced by tests/test_search_driver.py and the CI shard-equivalence
    # job) and budgeted plans are never cached.
    shards: int = field(default=1, compare=False)

    @property
    def has_search_budget(self) -> bool:
        """True when the query opts into the budgeted/pruned search driver."""
        return self.max_candidates is not None or self.time_budget_s is not None

    def __post_init__(self) -> None:
        axes = self.axes
        if not isinstance(axes, ParallelismAxes):
            axes = ParallelismAxes(tuple(axes))
            object.__setattr__(self, "axes", axes)
        request = self.request
        if not isinstance(request, ReductionRequest):
            request = ReductionRequest(tuple(request))
            object.__setattr__(self, "request", request)
        if not isinstance(self.algorithm, NCCLAlgorithm):
            try:
                object.__setattr__(self, "algorithm", NCCLAlgorithm(self.algorithm))
            except ValueError:
                raise QueryError(
                    f"unknown algorithm {self.algorithm!r}; expected one of "
                    f"{[a.value for a in NCCLAlgorithm]}"
                )
        payload = self.bytes_per_device
        if isinstance(payload, bool):
            raise QueryError(f"bytes_per_device must be an integer, got {payload!r}")
        if not isinstance(payload, int):
            try:
                coerced = int(payload)
            except (TypeError, ValueError):
                raise QueryError(
                    f"bytes_per_device must be an integer, got {payload!r}"
                )
            if coerced != payload:  # reject silent truncation of e.g. 100.9
                raise QueryError(
                    f"bytes_per_device must be an integer, got {payload!r}"
                )
            object.__setattr__(self, "bytes_per_device", coerced)
        if self.bytes_per_device <= 0:
            raise QueryError("bytes_per_device must be positive")
        if not isinstance(self.max_program_size, int) or self.max_program_size < 1:
            raise QueryError(
                f"max_program_size must be a positive integer, got {self.max_program_size!r}"
            )
        if self.max_matrices is not None and (
            not isinstance(self.max_matrices, int) or self.max_matrices < 1
        ):
            raise QueryError(
                f"max_matrices must be None or a positive integer, got {self.max_matrices!r}"
            )
        if self.max_candidates is not None and (
            isinstance(self.max_candidates, bool)
            or not isinstance(self.max_candidates, int)
            or self.max_candidates < 1
        ):
            raise QueryError(
                f"max_candidates must be None or a positive integer, got {self.max_candidates!r}"
            )
        if self.time_budget_s is not None:
            try:
                budget = float(self.time_budget_s)
            except (TypeError, ValueError):
                raise QueryError(
                    f"time_budget_s must be None or a positive number, got {self.time_budget_s!r}"
                )
            # NaN slips through a plain <= 0 check and would make every
            # elapsed-time comparison false: a "budgeted" query that never
            # stops.  Infinity is equally meaningless as a budget.
            if budget <= 0 or budget != budget or budget == float("inf"):
                raise QueryError(
                    f"time_budget_s must be None or a positive finite number, "
                    f"got {self.time_budget_s!r}"
                )
            object.__setattr__(self, "time_budget_s", budget)
        if (
            isinstance(self.shards, bool)
            or not isinstance(self.shards, int)
            or self.shards < 1
        ):
            raise QueryError(
                f"shards must be a positive integer, got {self.shards!r}"
            )
        request.validate_against(axes)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serializable form (stable key order, plain values).

        This dict *is* the canonical query the service fingerprints: change
        it and :data:`repro.service.fingerprint.FINGERPRINT_VERSION` must be
        bumped.  ``shards`` is deliberately absent — it parallelizes the cold
        path without changing what the query *means* (exhaustive sharded
        plans are bit-identical to serial ones), so it must not perturb
        fingerprints or cache keys.
        """
        return {
            "axes": {"sizes": list(self.axes.sizes), "names": list(self.axes.names)},
            "request": {"axes": list(self.request.axes)},
            "bytes_per_device": int(self.bytes_per_device),
            "algorithm": self.algorithm.value,
            "max_matrices": None if self.max_matrices is None else int(self.max_matrices),
            "max_program_size": int(self.max_program_size),
            "max_candidates": (
                None if self.max_candidates is None else int(self.max_candidates)
            ),
            "time_budget_s": (
                None if self.time_budget_s is None else float(self.time_budget_s)
            ),
        }

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Any],
        *,
        bytes_per_device: Optional[int] = None,
        max_matrices: Optional[int] = None,
        max_program_size: Optional[int] = None,
    ) -> "PlanQuery":
        """Build a query from :meth:`to_dict` output or the legacy file shape.

        The keyword arguments are *defaults*: they apply only when ``data``
        does not carry the corresponding key (the legacy
        ``{"axes": [8, 4], "reduce": [0], "bytes": ...}`` entries usually
        omit the payload and the search limits).
        """
        if not isinstance(data, Mapping):
            raise QueryError(f"a plan query must be a JSON object, got {type(data).__name__}")
        try:
            axes_field = data["axes"]
            if isinstance(axes_field, Mapping):
                axes = ParallelismAxes(
                    tuple(axes_field["sizes"]), tuple(axes_field.get("names") or ())
                )
            else:
                axes = ParallelismAxes(tuple(axes_field))
            if "request" in data:
                request_field = data["request"]
                reduce_axes = (
                    request_field["axes"]
                    if isinstance(request_field, Mapping)
                    else request_field
                )
            elif "reduce" in data:
                reduce_axes = data["reduce"]
            else:
                raise KeyError("request")
            request = ReductionRequest(tuple(reduce_axes))
            payload = data.get("bytes_per_device", data.get("bytes", bytes_per_device))
            if payload is None:
                raise QueryError(
                    "the query carries no payload: provide a 'bytes_per_device' "
                    "entry or a default"
                )
            limit = (
                data["max_matrices"] if "max_matrices" in data else max_matrices
            )
            size = (
                data["max_program_size"]
                if "max_program_size" in data
                else (
                    max_program_size
                    if max_program_size is not None
                    else DEFAULT_MAX_PROGRAM_SIZE
                )
            )
            return cls(
                axes=axes,
                request=request,
                bytes_per_device=payload,
                algorithm=data.get("algorithm", NCCLAlgorithm.RING),
                max_matrices=limit,
                max_program_size=size,
                max_candidates=data.get("max_candidates"),
                time_budget_s=data.get("time_budget_s"),
                # Transport-only: a wire/file query may ask for a sharded
                # cold path even though to_dict() never emits the key.
                shards=data.get("shards", 1),
            )
        except QueryError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise QueryError(f"bad plan query dict: {error!r}")

    def to_json(self) -> str:
        """Compact JSON encoding of :meth:`to_dict` (sorted keys)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "PlanQuery":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise QueryError(f"bad plan query JSON: {error}")
        return cls.from_dict(data)

    @classmethod
    def from_spec(
        cls,
        spec: str,
        *,
        bytes_per_device: Optional[int] = None,
        max_matrices: Optional[int] = None,
        max_program_size: Optional[int] = None,
    ) -> "PlanQuery":
        """Parse a legacy ``AXES:REDUCE[:BYTES[:ALGO]]`` command-line spec.

        Examples: ``8,4:0:67108864`` or ``2,16:1:1048576:tree``.  An omitted
        or empty BYTES falls back to ``bytes_per_device``.
        """
        parts = spec.split(":")
        if len(parts) not in (2, 3, 4):
            raise QueryError(
                f"a query spec must look like AXES:REDUCE[:BYTES[:ALGO]], got {spec!r}"
            )
        try:
            axes = tuple(int(a) for a in parts[0].split(",") if a != "")
            reduce_axes = tuple(int(a) for a in parts[1].split(",") if a != "")
            payload = (
                int(parts[2]) if len(parts) >= 3 and parts[2] else bytes_per_device
            )
        except ValueError as error:
            raise QueryError(f"bad query spec {spec!r}: {error}")
        if payload is None:
            raise QueryError(
                f"query spec {spec!r} omits BYTES and no default payload was given"
            )
        return cls(
            axes=ParallelismAxes(axes),
            request=ReductionRequest(reduce_axes),
            bytes_per_device=payload,
            algorithm=parts[3] if len(parts) == 4 else NCCLAlgorithm.RING,
            max_matrices=max_matrices,
            max_program_size=(
                max_program_size
                if max_program_size is not None
                else DEFAULT_MAX_PROGRAM_SIZE
            ),
        )

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        limits = []
        if self.max_matrices is not None:
            limits.append(f"max_matrices={self.max_matrices}")
        if self.max_candidates is not None:
            limits.append(f"max_candidates={self.max_candidates}")
        if self.time_budget_s is not None:
            limits.append(f"time_budget_s={self.time_budget_s:g}")
        if self.shards > 1:
            limits.append(f"shards={self.shards}")
        suffix = f" ({', '.join(limits)})" if limits else ""
        return (
            f"{self.axes.describe()} {self.request.describe(self.axes)}, "
            f"{self.bytes_per_device / 1e6:.0f} MB, {self.algorithm}{suffix}"
        )


@dataclass
class PlanOutcome:
    """One answered query: the ranked plan plus how it was produced.

    ``synthesis_seconds``/``evaluation_seconds`` are the cold-path timings
    :func:`repro.api.compute_plan` measures (zero on a cache hit);
    ``fingerprint``/``cache_tier``/``n_workers`` record provenance so callers
    can monitor hit rates and latency without instrumenting the pipeline.
    ``profile_hits``/``profile_misses`` count the simulator's compiled-profile
    cache traffic while evaluating this query (zero on a plan-cache hit):
    hits are candidate simulations answered by re-pricing an already compiled
    :class:`~repro.cost.profile.SimulationProfile` instead of re-running
    semantics and contention analysis.

    ``search`` is the streaming driver's :class:`~repro.search.SearchReport`
    as a JSON-ready dict (candidates considered / pruned / bound-rejected,
    budget stops) and ``synthesis_stats`` the aggregated synthesizer
    :class:`~repro.synthesis.pruning.SearchStatistics`; both are ``None`` on
    plan-cache hits, where no search ran.

    ``trace_id`` ties the outcome to its request trace in the telemetry
    spine (:mod:`repro.obs`): it is the id of the root span the planner
    opened for this query, so a ``--trace-out`` timeline can be joined
    against sweep records and service logs.  ``None`` when telemetry was
    disabled.
    """

    query: PlanQuery
    plan: "OptimizationPlan"
    synthesis_seconds: float = 0.0
    evaluation_seconds: float = 0.0
    total_seconds: float = 0.0
    fingerprint: Optional[str] = None
    cache_tier: Optional[str] = None  # "memory" | "disk" | None (cold)
    n_workers: int = 1
    profile_hits: int = 0
    profile_misses: int = 0
    search: Optional[Dict[str, Any]] = None
    synthesis_stats: Optional[Dict[str, Any]] = None
    trace_id: Optional[str] = None

    @property
    def cache_hit(self) -> bool:
        return self.cache_tier is not None

    @property
    def best(self) -> "RankedStrategy":
        return self.plan.best

    @property
    def num_candidates(self) -> int:
        return len(self.plan.candidates)

    @property
    def num_strategies(self) -> int:
        return len(self.plan.strategies)

    def provenance(self) -> Dict[str, Any]:
        """How this outcome was produced, as one JSON-ready dict.

        Consumers that persist outcomes next to other data (the sweep
        engine's JSONL records, monitoring hooks) embed exactly this dict
        rather than re-deriving timings from the plan.
        """
        return {
            "fingerprint": self.fingerprint,
            "cache_tier": self.cache_tier,
            "cache_hit": self.cache_hit,
            "synthesis_seconds": self.synthesis_seconds,
            "evaluation_seconds": self.evaluation_seconds,
            "total_seconds": self.total_seconds,
            "n_workers": self.n_workers,
            "profile_hits": self.profile_hits,
            "profile_misses": self.profile_misses,
            "search": self.search,
            "synthesis_stats": self.synthesis_stats,
            "trace_id": self.trace_id,
        }

    def baseline_speedups(self) -> Dict[str, Optional[float]]:
        """Predicted speedup of the best strategy over each paper baseline.

        Keys are the baseline names priced by the search driver's
        :class:`~repro.search.BaselineSource` (``all_reduce`` = the flat
        per-group ring AllReduce, ``hierarchical`` =
        Reduce-AllReduce-Broadcast, ``blueconnect`` =
        ReduceScatter-AllReduce-AllGather), each reported at its best
        placement.  A zero-cost best strategy against a costly baseline is
        ``None`` (infinite), mirroring :meth:`to_dict`'s handling of
        ``speedup_over_default``.  Empty for plans computed before baselines
        became first-class candidates.
        """
        best = self.plan.best.predicted_seconds if self.plan.strategies else 0.0
        speedups: Dict[str, Optional[float]] = {}
        for name, seconds in self.plan.baselines.items():
            if best <= 0:
                speedups[name] = None if seconds > 0 else 1.0
            else:
                speedups[name] = seconds / best
        return speedups

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form: query + plan + provenance.

        ``speedup_over_default`` is ``None`` when it is infinite (a zero-cost
        best strategy) so the encoding stays strict JSON; the per-baseline
        speedups use the same convention.
        """
        speedup = self.plan.speedup_over_default()
        data = {
            "query": self.query.to_dict(),
            "plan": self.plan.to_dict(),
            "num_candidates": self.num_candidates,
            "num_strategies": self.num_strategies,
            "speedup_over_default": speedup if speedup != float("inf") else None,
            "baseline_speedups": self.baseline_speedups(),
        }
        data.update(self.provenance())
        return data

    def describe(self) -> str:
        source = self.cache_tier or "cold"
        detail = (
            f"synthesis {self.synthesis_seconds * 1e3:.1f} ms, "
            f"evaluation {self.evaluation_seconds * 1e3:.1f} ms, "
            f"{self.n_workers} worker(s)"
            if not self.cache_hit
            else "cached plan"
        )
        return (
            f"[{source}] {self.num_strategies} strategies over "
            f"{self.num_candidates} placements in {self.total_seconds * 1e3:.1f} ms ({detail})"
        )


@runtime_checkable
class Planner(Protocol):
    """Anything that answers :class:`PlanQuery` objects.

    Both :class:`repro.api.P2` (direct computation) and
    :class:`repro.service.engine.PlanningService` (cache + pool + stats)
    satisfy this protocol and produce identical rankings for the same query,
    so callers — sweep runners, transports, shard routers — can hold either
    behind one type.
    """

    def plan(self, query: PlanQuery) -> PlanOutcome:
        """Answer one query."""
        ...

    def plan_many(self, queries: Sequence[PlanQuery]) -> List[PlanOutcome]:
        """Answer a batch of queries, in order."""
        ...
