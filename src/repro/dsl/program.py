"""Reduction instructions and programs.

A :class:`ReductionInstruction` is the triple ``(slice, form, collective)``
from the paper; a :class:`ReductionProgram` is a sequence of them.  Programs
are evaluated over a :class:`~repro.semantics.state.StateContext` by deriving
the device groups of each instruction (via :mod:`repro.dsl.grouping`) and
applying the collective's Hoare rule to every group while leaving
non-participating devices untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.dsl.forms import Form, InsideGroup, Master, Parallel
from repro.dsl.grouping import Groups, derive_groups
from repro.errors import DSLError, InvalidCollectiveError
from repro.semantics.collectives import Collective, apply_collective
from repro.semantics.state import DeviceState, StateContext

__all__ = ["ReductionInstruction", "ReductionProgram"]


@dataclass(frozen=True)
class ReductionInstruction:
    """One step of a reduction strategy: ``(slice, form, collective)``."""

    slice_level: int
    form: Form
    collective: Collective

    def __post_init__(self) -> None:
        if self.slice_level < 0:
            raise DSLError(f"slice level must be >= 0, got {self.slice_level}")
        ancestor = self.form.ancestor
        if ancestor is not None and ancestor >= self.slice_level:
            raise DSLError(
                f"form ancestor level {ancestor} must be a strict ancestor of "
                f"slice level {self.slice_level}"
            )

    def groups(self, radices: Sequence[int]) -> Groups:
        """Device groups this instruction induces over a hierarchy with ``radices``."""
        return derive_groups(radices, self.slice_level, self.form)

    def apply(self, context: StateContext, radices: Sequence[int]) -> StateContext:
        """Apply this instruction to ``context``; raise if semantically invalid."""
        groups = self.groups(radices)
        if not groups:
            raise InvalidCollectiveError(
                f"instruction {self!r} induces no group of size >= 2"
            )
        return self.apply_to_groups(context, groups)

    def apply_to_groups(self, context: StateContext, groups: Groups) -> StateContext:
        """Apply the collective to pre-computed ``groups`` over ``context``."""
        updates: Dict[int, DeviceState] = {}
        for group in groups:
            pre = [context[d] for d in group]
            post = apply_collective(self.collective, pre)
            for device, state in zip(group, post):
                updates[device] = state
        return context.replace(updates)

    def describe(self, level_names: Optional[Sequence[str]] = None) -> str:
        if level_names is not None and 0 <= self.slice_level < len(level_names):
            slice_name = str(level_names[self.slice_level])
        else:
            slice_name = f"L{self.slice_level}"
        return f"({slice_name}, {self.form.describe(list(level_names) if level_names else None)}, {self.collective})"


@dataclass(frozen=True)
class ReductionProgram:
    """An ordered list of reduction instructions."""

    instructions: Tuple[ReductionInstruction, ...]

    @classmethod
    def of(cls, *instructions: ReductionInstruction) -> "ReductionProgram":
        return cls(tuple(instructions))

    @classmethod
    def single_all_reduce(cls, slice_level: int = 0) -> "ReductionProgram":
        """The default strategy: one AllReduce inside each slice-level group."""
        return cls.of(ReductionInstruction(slice_level, InsideGroup(), Collective.ALL_REDUCE))

    @property
    def size(self) -> int:
        """Program size as the paper counts it: number of instructions."""
        return len(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[ReductionInstruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> ReductionInstruction:
        return self.instructions[index]

    def append(self, instruction: ReductionInstruction) -> "ReductionProgram":
        """Return a new program with ``instruction`` appended."""
        return ReductionProgram(self.instructions + (instruction,))

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def apply(self, context: StateContext, radices: Sequence[int]) -> StateContext:
        """Run the whole program from ``context``; raise on the first invalid step."""
        current = context
        for instruction in self.instructions:
            current = instruction.apply(current, radices)
        return current

    def is_valid(self, context: StateContext, radices: Sequence[int]) -> bool:
        """True when every step satisfies its Hoare precondition from ``context``."""
        try:
            self.apply(context, radices)
            return True
        except InvalidCollectiveError:
            return False

    def achieves(
        self, initial: StateContext, goal: StateContext, radices: Sequence[int]
    ) -> bool:
        """True when running the program from ``initial`` produces exactly ``goal``."""
        try:
            return self.apply(initial, radices) == goal
        except InvalidCollectiveError:
            return False

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    def collectives_used(self) -> Tuple[Collective, ...]:
        return tuple(instruction.collective for instruction in self.instructions)

    def uses_rooted_collectives(self) -> bool:
        return any(instruction.collective.is_rooted for instruction in self.instructions)

    def describe(self, level_names: Optional[Sequence[str]] = None) -> str:
        if not self.instructions:
            return "<empty program>"
        return " ; ".join(i.describe(level_names) for i in self.instructions)

    def signature(self) -> Tuple:
        """A hashable signature used for de-duplication across search orders."""
        sig: List = []
        for instruction in self.instructions:
            form = instruction.form
            if isinstance(form, InsideGroup):
                form_key = ("inside",)
            elif isinstance(form, Parallel):
                form_key = ("parallel", form.level)
            elif isinstance(form, Master):
                form_key = ("master", form.level)
            else:  # pragma: no cover - defensive
                raise DSLError(f"unknown form {form!r}")
            sig.append((instruction.slice_level, form_key, instruction.collective.value))
        return tuple(sig)
