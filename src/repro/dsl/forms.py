"""Reduction forms: ``InsideGroup``, ``Parallel(e)`` and ``Master(e)``.

The form of an instruction decides which devices of each slice group talk to
each other (paper §3.3, Table 2).  Forms referring to an ancestor level carry
that level's index in the synthesis hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import DSLError

__all__ = ["InsideGroup", "Parallel", "Master", "Form"]


@dataclass(frozen=True)
class InsideGroup:
    """Reduce within each slice group (all devices under one slice instance)."""

    def describe(self, level_names: Optional[list] = None) -> str:
        return "InsideGroup"

    @property
    def ancestor(self) -> Optional[int]:
        return None


@dataclass(frozen=True)
class Parallel:
    """Reduce position-wise across all slice groups sharing the same ancestor.

    ``level`` is the index of the ancestor level in the synthesis hierarchy;
    it must be a strict ancestor (smaller index) of the slice level.
    """

    level: int

    def __post_init__(self) -> None:
        if self.level < 0:
            raise DSLError(f"Parallel ancestor level must be >= 0, got {self.level}")

    def describe(self, level_names: Optional[list] = None) -> str:
        if level_names is not None and 0 <= self.level < len(level_names):
            return f"Parallel({level_names[self.level]})"
        return f"Parallel(L{self.level})"

    @property
    def ancestor(self) -> Optional[int]:
        return self.level


@dataclass(frozen=True)
class Master:
    """Like :class:`Parallel`, but only the first position-wise group reduces."""

    level: int

    def __post_init__(self) -> None:
        if self.level < 0:
            raise DSLError(f"Master ancestor level must be >= 0, got {self.level}")

    def describe(self, level_names: Optional[list] = None) -> str:
        if level_names is not None and 0 <= self.level < len(level_names):
            return f"Master({level_names[self.level]})"
        return f"Master(L{self.level})"

    @property
    def ancestor(self) -> Optional[int]:
        return self.level


Form = Union[InsideGroup, Parallel, Master]
