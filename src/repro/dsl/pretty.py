"""Pretty-printing helpers for reduction programs.

These are split from :mod:`repro.dsl.program` so that the evaluation harness
and the CLI can render programs with hierarchy level names, device groups and
short mnemonic names (e.g. ``RS-AR-AG``) without the core classes knowing
about presentation concerns.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.dsl.program import ReductionInstruction, ReductionProgram
from repro.semantics.collectives import Collective

__all__ = ["describe_instruction", "describe_program", "program_mnemonic"]

_MNEMONICS = {
    Collective.ALL_REDUCE: "AR",
    Collective.REDUCE_SCATTER: "RS",
    Collective.ALL_GATHER: "AG",
    Collective.REDUCE: "R",
    Collective.BROADCAST: "B",
}


def describe_instruction(
    instruction: ReductionInstruction, level_names: Optional[Sequence[str]] = None
) -> str:
    """One-line rendering of a single instruction."""
    return instruction.describe(level_names)


def describe_program(
    program: ReductionProgram,
    level_names: Optional[Sequence[str]] = None,
    multiline: bool = False,
) -> str:
    """Render a program either on one line or as a numbered step list."""
    if not multiline:
        return program.describe(level_names)
    lines: List[str] = []
    for step, instruction in enumerate(program):
        lines.append(f"  step {step}: {instruction.describe(level_names)}")
    return "\n".join(lines) if lines else "<empty program>"


def program_mnemonic(program: ReductionProgram) -> str:
    """Short name built from the collectives, e.g. ``RS-AR-AG`` for BlueConnect."""
    if len(program) == 0:
        return "<empty>"
    return "-".join(_MNEMONICS[i.collective] for i in program)
