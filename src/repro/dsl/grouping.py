"""From ``(slice, form)`` to concrete device groups (paper §3.3, Table 2).

All functions here work over an abstract hierarchy given only by its level
radices (root level first).  Devices are the leaves, numbered in mixed-radix
order with the root digit most significant — exactly the virtual devices of a
synthesis hierarchy.  The synthesis package later maps these virtual devices
onto physical ones.

Groups are always returned as tuples of device-index tuples; member order
within a group is significant (the first member is the root for rooted
collectives) and follows increasing device index, which for hierarchical
systems means "first device under the instance" as the paper assumes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.dsl.forms import Form, InsideGroup, Master, Parallel
from repro.errors import DSLError
from repro.semantics.collectives import ALL_COLLECTIVES, Collective
from repro.utils.mixed_radix import MixedRadix

__all__ = ["derive_groups", "enumerate_instructions", "slice_groups"]

Groups = Tuple[Tuple[int, ...], ...]


def _check_radices(radices: Sequence[int], slice_level: int) -> None:
    if len(radices) == 0:
        raise DSLError("the synthesis hierarchy has no levels")
    if not 0 <= slice_level < len(radices):
        raise DSLError(
            f"slice level {slice_level} out of range for {len(radices)} hierarchy levels"
        )


def slice_groups(radices: Sequence[int], slice_level: int) -> Groups:
    """Devices grouped by their instance of ``slice_level``.

    Devices sharing digits ``0..slice_level`` form one group; each group has
    ``prod(radices[slice_level+1:])`` members ordered by index.
    """
    _check_radices(radices, slice_level)
    radix = MixedRadix(tuple(radices))
    groups: Dict[Tuple[int, ...], List[int]] = {}
    for device in range(radix.size):
        digits = radix.decode(device)
        key = digits[: slice_level + 1]
        groups.setdefault(key, []).append(device)
    return tuple(tuple(groups[k]) for k in sorted(groups))


def derive_groups(radices: Sequence[int], slice_level: int, form: Form) -> Groups:
    """Device groups induced by a ``(slice, form)`` pair.

    * ``InsideGroup``: one group per instance of the slice level.
    * ``Parallel(a)``: for every instance of ancestor ``a`` and every position
      below the slice level, the devices at that position across the slice
      instances under ``a``.
    * ``Master(a)``: like ``Parallel(a)`` but only position 0.

    Groups of size one are dropped (they cannot host a collective); if no
    group of size >= 2 remains the result is empty, which callers treat as an
    invalid instruction.
    """
    _check_radices(radices, slice_level)
    radix = MixedRadix(tuple(radices))

    ancestor = form.ancestor
    if isinstance(form, InsideGroup):
        raw = slice_groups(radices, slice_level)
        return tuple(g for g in raw if len(g) >= 2)

    if ancestor is None or ancestor >= slice_level:
        raise DSLError(
            f"form {form!r} must reference a strict ancestor of slice level {slice_level}"
        )

    groups: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], List[int]] = {}
    for device in range(radix.size):
        digits = radix.decode(device)
        ancestor_key = digits[: ancestor + 1]
        position_key = digits[slice_level + 1 :]
        groups.setdefault((ancestor_key, position_key), []).append(device)

    selected: List[Tuple[int, ...]] = []
    zero_position = tuple([0] * (len(radices) - slice_level - 1))
    for (ancestor_key, position_key) in sorted(groups):
        members = tuple(sorted(groups[(ancestor_key, position_key)]))
        if len(members) < 2:
            continue
        if isinstance(form, Master) and position_key != zero_position:
            continue
        selected.append(members)
    return tuple(selected)


def enumerate_instructions(
    radices: Sequence[int],
    collectives: Sequence[Collective] = ALL_COLLECTIVES,
    deduplicate: bool = True,
) -> Iterator[Tuple[int, Form, Collective, Groups]]:
    """Enumerate all syntactically valid instructions over ``radices``.

    Yields ``(slice_level, form, collective, groups)`` with non-empty groups.
    When ``deduplicate`` is set (the default), instructions whose derived
    grouping is identical to one already yielded are skipped — radix-1 levels
    otherwise generate many copies of the same communication pattern.
    """
    if len(radices) == 0:
        raise DSLError("the synthesis hierarchy has no levels")
    seen: set = set()
    num_levels = len(radices)
    for slice_level in range(num_levels):
        candidate_forms: List[Form] = [InsideGroup()]
        for ancestor in range(slice_level):
            candidate_forms.append(Parallel(ancestor))
            candidate_forms.append(Master(ancestor))
        for form in candidate_forms:
            groups = derive_groups(radices, slice_level, form)
            if not groups:
                continue
            if deduplicate:
                key = groups
                if key in seen:
                    continue
                seen.add(key)
            for op in collectives:
                yield slice_level, form, op, groups
