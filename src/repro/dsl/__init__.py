"""The reduction-strategy DSL (paper §3.3).

A reduction *program* is a list of reduction *instructions*; each instruction
is a triple ``(slice, form, collective)``:

* the **slice** names a level of the synthesis hierarchy and partitions the
  devices into one group per instance of that level;
* the **form** decides how those groups communicate — within each group
  (:class:`InsideGroup`), position-wise across sibling groups under a common
  ancestor (:class:`Parallel`), or only the first such position-wise group
  (:class:`Master`);
* the **collective** is one of the five operations with the Hoare semantics of
  :mod:`repro.semantics.collectives`.

:mod:`repro.dsl.grouping` turns an instruction into concrete device groups for
a given synthesis hierarchy, and :mod:`repro.dsl.program` evaluates programs
over state contexts.
"""

from repro.dsl.forms import Form, InsideGroup, Master, Parallel
from repro.dsl.program import ReductionInstruction, ReductionProgram
from repro.dsl.grouping import derive_groups, enumerate_instructions
from repro.dsl.pretty import describe_instruction, describe_program

__all__ = [
    "Form",
    "InsideGroup",
    "Parallel",
    "Master",
    "ReductionInstruction",
    "ReductionProgram",
    "derive_groups",
    "enumerate_instructions",
    "describe_instruction",
    "describe_program",
]
