"""Choosing one placement for several reductions at once.

The planner evaluates every parallelism matrix against every requested
reduction:

* for each (matrix, reduction) pair it synthesizes the reduction strategies
  with the usual P² pipeline, prices them with the analytic simulator and
  keeps the cheapest (together with the default AllReduce for reference);
* each reduction carries a *weight* — how many times it runs per training
  step — so the per-placement objective is the weighted sum of the best
  per-reduction times;
* placements are ranked by that objective.

This is exactly the workflow §4.1 of the paper argues for when it notes that
"models with multiple parallelism forms involve reductions across both axes,
and the selection of a mapping should take all of them into account".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.baselines.allreduce import default_all_reduce
from repro.cost.model import CostModel
from repro.dsl.pretty import program_mnemonic
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.simulator import ProgramSimulator
from repro.errors import EvaluationError
from repro.hierarchy.matrix import ParallelismMatrix, enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.query import Planner, PlanQuery
from repro.synthesis.hierarchy import build_synthesis_hierarchy
from repro.synthesis.lowering import LoweredProgram, lower_synthesized
from repro.synthesis.synthesizer import Synthesizer
from repro.topology.topology import MachineTopology
from repro.utils.tabulate import format_table

__all__ = [
    "WeightedReduction",
    "ReductionChoice",
    "PlacementEvaluation",
    "MultiReductionPlan",
    "MultiReductionPlanner",
]


@dataclass(frozen=True)
class WeightedReduction:
    """One reduction the training step performs, with its payload and frequency."""

    name: str
    request: ReductionRequest
    bytes_per_device: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise EvaluationError("a weighted reduction needs a name")
        if self.bytes_per_device <= 0:
            raise EvaluationError(f"reduction {self.name!r} needs a positive payload")
        if self.weight <= 0:
            raise EvaluationError(f"reduction {self.name!r} needs a positive weight")


@dataclass(frozen=True)
class ReductionChoice:
    """The strategy chosen for one reduction under one placement."""

    reduction: WeightedReduction
    program: LoweredProgram
    mnemonic: str
    seconds: float
    all_reduce_seconds: float

    @property
    def speedup_over_all_reduce(self) -> float:
        if self.seconds <= 0:
            return 1.0
        return self.all_reduce_seconds / self.seconds

    @property
    def weighted_seconds(self) -> float:
        return self.seconds * self.reduction.weight


@dataclass(frozen=True)
class PlacementEvaluation:
    """One parallelism matrix with the best strategy per reduction."""

    matrix: ParallelismMatrix
    choices: Tuple[ReductionChoice, ...]

    @property
    def total_seconds(self) -> float:
        """Weighted communication time per training step under this placement."""
        return sum(choice.weighted_seconds for choice in self.choices)

    @property
    def total_all_reduce_seconds(self) -> float:
        return sum(
            choice.all_reduce_seconds * choice.reduction.weight for choice in self.choices
        )

    def choice_for(self, name: str) -> ReductionChoice:
        for choice in self.choices:
            if choice.reduction.name == name:
                return choice
        raise EvaluationError(f"no reduction named {name!r} in this evaluation")


@dataclass
class MultiReductionPlan:
    """All placements ranked by their combined reduction cost."""

    axes: ParallelismAxes
    reductions: Tuple[WeightedReduction, ...]
    algorithm: NCCLAlgorithm
    placements: List[PlacementEvaluation]

    @property
    def best(self) -> PlacementEvaluation:
        if not self.placements:
            raise EvaluationError("the plan contains no placements")
        return self.placements[0]

    def placement_for(self, matrix: ParallelismMatrix) -> PlacementEvaluation:
        for evaluation in self.placements:
            if evaluation.matrix == matrix:
                return evaluation
        raise EvaluationError(f"matrix {matrix.describe()} not in this plan")

    def advantage_over_single_axis_choice(self) -> float:
        """How much worse the combined cost gets if the placement is chosen by
        looking only at the single most expensive reduction (a common heuristic)."""
        if not self.placements:
            raise EvaluationError("the plan contains no placements")
        heaviest = max(
            self.reductions,
            key=lambda reduction: reduction.bytes_per_device * reduction.weight,
        )
        best_for_heaviest = min(
            self.placements,
            key=lambda evaluation: evaluation.choice_for(heaviest.name).seconds,
        )
        if self.best.total_seconds <= 0:
            return 1.0
        return best_for_heaviest.total_seconds / self.best.total_seconds

    def describe(self, top_k: int = 5) -> str:
        rows = []
        for evaluation in self.placements[:top_k]:
            row: List[object] = [evaluation.matrix.describe()]
            for choice in evaluation.choices:
                row.append(choice.seconds * 1e3)
                row.append(choice.mnemonic)
            row.append(evaluation.total_seconds * 1e3)
            rows.append(row)
        headers = ["placement"]
        for reduction in self.reductions:
            headers.extend([f"{reduction.name} (ms)", "strategy"])
        headers.append("weighted total (ms)")
        return format_table(
            headers,
            rows,
            title=f"Placement plan for {self.axes.describe()} ({self.algorithm})",
            float_fmt="{:.2f}",
        )


@dataclass
class MultiReductionPlanner:
    """Plans placements that minimise the combined cost of several reductions."""

    topology: MachineTopology
    cost_model: CostModel = field(default_factory=CostModel)
    max_program_size: int = 3
    node_limit: int = 500_000

    def queries_for(
        self,
        axes: ParallelismAxes,
        reductions: Sequence[WeightedReduction],
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        max_matrices: Optional[int] = None,
    ) -> List[PlanQuery]:
        """One :class:`PlanQuery` per reduction (same order as ``reductions``).

        These are the exact queries :meth:`plan_with` issues — hand them to
        :meth:`~repro.service.engine.PlanningService.plan_many` (or its
        ``warm``-style callers) to precompute the cache a multi-reduction
        plan will hit.
        """
        self._validate(axes, reductions)
        return [
            PlanQuery(
                axes=axes,
                request=reduction.request,
                bytes_per_device=reduction.bytes_per_device,
                algorithm=algorithm,
                max_matrices=max_matrices,
                max_program_size=self.max_program_size,
            )
            for reduction in reductions
        ]

    def plan_with(
        self,
        planner: Planner,
        axes: ParallelismAxes,
        reductions: Sequence[WeightedReduction],
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        max_matrices: Optional[int] = None,
    ) -> MultiReductionPlan:
        """Like :meth:`plan`, but source per-reduction rankings from ``planner``.

        ``planner`` is anything satisfying :class:`~repro.query.Planner` — a
        bare :class:`repro.api.P2` or a caching
        :class:`~repro.service.engine.PlanningService`, whose plan cache then
        amortizes repeated multi-reduction planning over the same axes.  One
        query is issued per reduction; each placement's choice is the
        cheapest ranked strategy for its matrix in that reduction's plan.

        Unlike :meth:`plan`, the search runs through the standard P²
        pipeline, which uses its own synthesis node limit — this planner's
        ``node_limit`` knob does not apply here.  When the planner exposes a
        ``topology`` it must match this planner's.
        """
        planner_topology = getattr(planner, "topology", None)
        if planner_topology is not None:
            from repro.service.fingerprint import canonical_topology

            if canonical_topology(planner_topology) != canonical_topology(self.topology):
                raise EvaluationError(
                    f"planner is bound to topology {planner_topology.name!r}, "
                    f"not this multi-reduction planner's {self.topology.name!r}"
                )
        queries = self.queries_for(axes, reductions, algorithm, max_matrices)
        outcomes = planner.plan_many(queries)
        first = outcomes[0].plan
        evaluations: List[PlacementEvaluation] = []
        for candidate in first.candidates:
            matrix = candidate.matrix
            choices: List[ReductionChoice] = []
            for reduction, outcome in zip(reductions, outcomes):
                ranked = outcome.plan.strategies_for_matrix(matrix)
                if not ranked:
                    raise EvaluationError(
                        f"planner returned no strategies for placement "
                        f"{matrix.describe()} and reduction {reduction.name!r}"
                    )
                best = ranked[0]  # plans are sorted by predicted time
                default = outcome.plan.default_all_reduce(matrix)
                choices.append(
                    ReductionChoice(
                        reduction=reduction,
                        program=best.program,
                        mnemonic=best.mnemonic,
                        seconds=best.predicted_seconds,
                        all_reduce_seconds=default.predicted_seconds,
                    )
                )
            evaluations.append(
                PlacementEvaluation(matrix=matrix, choices=tuple(choices))
            )
        evaluations.sort(key=lambda evaluation: evaluation.total_seconds)
        return MultiReductionPlan(
            axes=axes,
            reductions=tuple(reductions),
            algorithm=algorithm,
            placements=evaluations,
        )

    def _validate(
        self, axes: ParallelismAxes, reductions: Sequence[WeightedReduction]
    ) -> None:
        if not reductions:
            raise EvaluationError("at least one reduction is required")
        names = [r.name for r in reductions]
        if len(set(names)) != len(names):
            raise EvaluationError(f"reduction names must be unique, got {names}")
        for reduction in reductions:
            reduction.request.validate_against(axes)

    def plan(
        self,
        axes: ParallelismAxes,
        reductions: Sequence[WeightedReduction],
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        max_matrices: Optional[int] = None,
    ) -> MultiReductionPlan:
        """Evaluate every placement against every reduction and rank them."""
        self._validate(axes, reductions)

        matrices = enumerate_parallelism_matrices(
            self.topology.hierarchy, axes, max_results=max_matrices
        )
        if not matrices:
            raise EvaluationError(
                f"no parallelism matrix exists for {axes.describe()} on "
                f"{self.topology.hierarchy.describe()}"
            )

        simulator = ProgramSimulator(self.topology, self.cost_model)
        synthesizer = Synthesizer(
            max_program_size=self.max_program_size, node_limit=self.node_limit
        )
        evaluations: List[PlacementEvaluation] = []
        for matrix in matrices:
            placement = DevicePlacement(matrix)
            choices: List[ReductionChoice] = []
            for reduction in reductions:
                choices.append(
                    self._best_choice(
                        reduction, matrix, placement, synthesizer, simulator, algorithm
                    )
                )
            evaluations.append(PlacementEvaluation(matrix=matrix, choices=tuple(choices)))
        evaluations.sort(key=lambda evaluation: evaluation.total_seconds)
        return MultiReductionPlan(
            axes=axes,
            reductions=tuple(reductions),
            algorithm=algorithm,
            placements=evaluations,
        )

    # ------------------------------------------------------------------ #
    def _best_choice(
        self,
        reduction: WeightedReduction,
        matrix: ParallelismMatrix,
        placement: DevicePlacement,
        synthesizer: Synthesizer,
        simulator: ProgramSimulator,
        algorithm: NCCLAlgorithm,
    ) -> ReductionChoice:
        baseline = default_all_reduce(placement, reduction.request)
        if baseline.num_steps == 0:
            return ReductionChoice(
                reduction=reduction,
                program=baseline,
                mnemonic="-",
                seconds=0.0,
                all_reduce_seconds=0.0,
            )
        baseline_seconds = simulator.simulate(
            baseline, reduction.bytes_per_device, algorithm
        ).total_seconds

        best_program = baseline
        best_mnemonic = "AR"
        best_seconds = baseline_seconds

        hierarchy = build_synthesis_hierarchy(matrix, reduction.request)
        result = synthesizer.synthesize(hierarchy)
        for synthesized in result.programs:
            lowered = lower_synthesized(synthesized, hierarchy, placement)
            seconds = simulator.simulate(
                lowered, reduction.bytes_per_device, algorithm
            ).total_seconds
            if seconds < best_seconds:
                best_seconds = seconds
                best_program = lowered
                best_mnemonic = program_mnemonic(synthesized.program)
        return ReductionChoice(
            reduction=reduction,
            program=best_program,
            mnemonic=best_mnemonic,
            seconds=best_seconds,
            all_reduce_seconds=baseline_seconds,
        )
