"""Choosing one placement for several reductions at once.

The planner evaluates every parallelism matrix against every requested
reduction:

* for each (matrix, reduction) pair it synthesizes the reduction strategies
  with the usual P² pipeline, prices them with the analytic simulator and
  keeps the cheapest (together with the default AllReduce for reference);
* each reduction carries a *weight* — how many times it runs per training
  step — so the per-placement objective is the weighted sum of the best
  per-reduction times;
* placements are ranked by that objective.

This is exactly the workflow §4.1 of the paper argues for when it notes that
"models with multiple parallelism forms involve reductions across both axes,
and the selection of a mapping should take all of them into account".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.allreduce import default_all_reduce
from repro.cost.model import CostModel
from repro.dsl.pretty import program_mnemonic
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.simulator import ProgramSimulator
from repro.errors import EvaluationError
from repro.hierarchy.matrix import ParallelismMatrix, enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.query import Planner, PlanQuery
from repro.synthesis.hierarchy import build_synthesis_hierarchy
from repro.synthesis.lowering import LoweredProgram, lower_synthesized
from repro.synthesis.synthesizer import Synthesizer
from repro.topology.topology import MachineTopology
from repro.utils.tabulate import format_table

__all__ = [
    "WeightedReduction",
    "ReductionChoice",
    "PlacementEvaluation",
    "MultiReductionPlan",
    "MultiReductionPlanner",
]


@dataclass(frozen=True)
class WeightedReduction:
    """One reduction the training step performs, with its payload and frequency."""

    name: str
    request: ReductionRequest
    bytes_per_device: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise EvaluationError("a weighted reduction needs a name")
        if self.bytes_per_device <= 0:
            raise EvaluationError(f"reduction {self.name!r} needs a positive payload")
        if self.weight <= 0:
            raise EvaluationError(f"reduction {self.name!r} needs a positive weight")


@dataclass(frozen=True)
class ReductionChoice:
    """The strategy chosen for one reduction under one placement."""

    reduction: WeightedReduction
    program: LoweredProgram
    mnemonic: str
    seconds: float
    all_reduce_seconds: float

    @property
    def speedup_over_all_reduce(self) -> float:
        if self.seconds <= 0:
            return 1.0
        return self.all_reduce_seconds / self.seconds

    @property
    def weighted_seconds(self) -> float:
        return self.seconds * self.reduction.weight


@dataclass(frozen=True)
class PlacementEvaluation:
    """One parallelism matrix with the best strategy per reduction."""

    matrix: ParallelismMatrix
    choices: Tuple[ReductionChoice, ...]

    @property
    def total_seconds(self) -> float:
        """Weighted communication time per training step under this placement."""
        return sum(choice.weighted_seconds for choice in self.choices)

    @property
    def total_all_reduce_seconds(self) -> float:
        return sum(
            choice.all_reduce_seconds * choice.reduction.weight for choice in self.choices
        )

    def choice_for(self, name: str) -> ReductionChoice:
        for choice in self.choices:
            if choice.reduction.name == name:
                return choice
        raise EvaluationError(f"no reduction named {name!r} in this evaluation")


@dataclass
class MultiReductionPlan:
    """All placements ranked by their combined reduction cost."""

    axes: ParallelismAxes
    reductions: Tuple[WeightedReduction, ...]
    algorithm: NCCLAlgorithm
    placements: List[PlacementEvaluation]
    #: Pricing provenance for plans built by :meth:`MultiReductionPlanner.plan`:
    #: profile hit/miss and batch-pricing counter deltas for this plan.
    #: ``None`` for plans sourced from an external planner (:meth:`plan_with`),
    #: whose provenance lives in that planner's own reports.
    provenance: Optional[Dict[str, int]] = None

    @property
    def best(self) -> PlacementEvaluation:
        if not self.placements:
            raise EvaluationError("the plan contains no placements")
        return self.placements[0]

    def placement_for(self, matrix: ParallelismMatrix) -> PlacementEvaluation:
        for evaluation in self.placements:
            if evaluation.matrix == matrix:
                return evaluation
        raise EvaluationError(f"matrix {matrix.describe()} not in this plan")

    def advantage_over_single_axis_choice(self) -> float:
        """How much worse the combined cost gets if the placement is chosen by
        looking only at the single most expensive reduction (a common heuristic)."""
        if not self.placements:
            raise EvaluationError("the plan contains no placements")
        heaviest = max(
            self.reductions,
            key=lambda reduction: reduction.bytes_per_device * reduction.weight,
        )
        best_for_heaviest = min(
            self.placements,
            key=lambda evaluation: evaluation.choice_for(heaviest.name).seconds,
        )
        if self.best.total_seconds <= 0:
            return 1.0
        return best_for_heaviest.total_seconds / self.best.total_seconds

    def describe(self, top_k: int = 5) -> str:
        rows = []
        for evaluation in self.placements[:top_k]:
            row: List[object] = [evaluation.matrix.describe()]
            for choice in evaluation.choices:
                row.append(choice.seconds * 1e3)
                row.append(choice.mnemonic)
            row.append(evaluation.total_seconds * 1e3)
            rows.append(row)
        headers = ["placement"]
        for reduction in self.reductions:
            headers.extend([f"{reduction.name} (ms)", "strategy"])
        headers.append("weighted total (ms)")
        return format_table(
            headers,
            rows,
            title=f"Placement plan for {self.axes.describe()} ({self.algorithm})",
            float_fmt="{:.2f}",
        )


@dataclass
class MultiReductionPlanner:
    """Plans placements that minimise the combined cost of several reductions."""

    topology: MachineTopology
    cost_model: CostModel = field(default_factory=CostModel)
    max_program_size: int = 3
    node_limit: int = 500_000
    _simulator_cache: Optional[ProgramSimulator] = field(
        default=None, init=False, repr=False, compare=False
    )
    _simulator_key: Optional[Tuple[int, int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def simulator(self) -> ProgramSimulator:
        """The planner's persistent simulator (rebuilt if topology/model change).

        Keeping one simulator across :meth:`plan` calls preserves its
        compiled-profile and coefficient-table caches, so repeated planning
        over the same axes prices from cache instead of recompiling.
        """
        key = (id(self.topology), id(self.cost_model))
        if self._simulator_cache is None or self._simulator_key != key:
            self._simulator_cache = ProgramSimulator(self.topology, self.cost_model)
            self._simulator_key = key
        return self._simulator_cache

    def queries_for(
        self,
        axes: ParallelismAxes,
        reductions: Sequence[WeightedReduction],
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        max_matrices: Optional[int] = None,
    ) -> List[PlanQuery]:
        """One :class:`PlanQuery` per reduction (same order as ``reductions``).

        These are the exact queries :meth:`plan_with` issues — hand them to
        :meth:`~repro.service.engine.PlanningService.plan_many` (or its
        ``warm``-style callers) to precompute the cache a multi-reduction
        plan will hit.
        """
        self._validate(axes, reductions)
        return [
            PlanQuery(
                axes=axes,
                request=reduction.request,
                bytes_per_device=reduction.bytes_per_device,
                algorithm=algorithm,
                max_matrices=max_matrices,
                max_program_size=self.max_program_size,
            )
            for reduction in reductions
        ]

    def plan_with(
        self,
        planner: Planner,
        axes: ParallelismAxes,
        reductions: Sequence[WeightedReduction],
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        max_matrices: Optional[int] = None,
    ) -> MultiReductionPlan:
        """Like :meth:`plan`, but source per-reduction rankings from ``planner``.

        ``planner`` is anything satisfying :class:`~repro.query.Planner` — a
        bare :class:`repro.api.P2` or a caching
        :class:`~repro.service.engine.PlanningService`, whose plan cache then
        amortizes repeated multi-reduction planning over the same axes.  One
        query is issued per reduction; each placement's choice is the
        cheapest ranked strategy for its matrix in that reduction's plan.

        Unlike :meth:`plan`, the search runs through the standard P²
        pipeline, which uses its own synthesis node limit — this planner's
        ``node_limit`` knob does not apply here.  When the planner exposes a
        ``topology`` it must match this planner's.
        """
        planner_topology = getattr(planner, "topology", None)
        if planner_topology is not None:
            from repro.service.fingerprint import canonical_topology

            if canonical_topology(planner_topology) != canonical_topology(self.topology):
                raise EvaluationError(
                    f"planner is bound to topology {planner_topology.name!r}, "
                    f"not this multi-reduction planner's {self.topology.name!r}"
                )
        queries = self.queries_for(axes, reductions, algorithm, max_matrices)
        outcomes = planner.plan_many(queries)
        first = outcomes[0].plan
        evaluations: List[PlacementEvaluation] = []
        for candidate in first.candidates:
            matrix = candidate.matrix
            choices: List[ReductionChoice] = []
            for reduction, outcome in zip(reductions, outcomes):
                ranked = outcome.plan.strategies_for_matrix(matrix)
                if not ranked:
                    raise EvaluationError(
                        f"planner returned no strategies for placement "
                        f"{matrix.describe()} and reduction {reduction.name!r}"
                    )
                best = ranked[0]  # plans are sorted by predicted time
                default = outcome.plan.default_all_reduce(matrix)
                choices.append(
                    ReductionChoice(
                        reduction=reduction,
                        program=best.program,
                        mnemonic=best.mnemonic,
                        seconds=best.predicted_seconds,
                        all_reduce_seconds=default.predicted_seconds,
                    )
                )
            evaluations.append(
                PlacementEvaluation(matrix=matrix, choices=tuple(choices))
            )
        evaluations.sort(key=lambda evaluation: evaluation.total_seconds)
        return MultiReductionPlan(
            axes=axes,
            reductions=tuple(reductions),
            algorithm=algorithm,
            placements=evaluations,
        )

    def _validate(
        self, axes: ParallelismAxes, reductions: Sequence[WeightedReduction]
    ) -> None:
        if not reductions:
            raise EvaluationError("at least one reduction is required")
        names = [r.name for r in reductions]
        if len(set(names)) != len(names):
            raise EvaluationError(f"reduction names must be unique, got {names}")
        for reduction in reductions:
            reduction.request.validate_against(axes)

    def plan(
        self,
        axes: ParallelismAxes,
        reductions: Sequence[WeightedReduction],
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        max_matrices: Optional[int] = None,
    ) -> MultiReductionPlan:
        """Evaluate every placement against every reduction and rank them."""
        self._validate(axes, reductions)

        matrices = enumerate_parallelism_matrices(
            self.topology.hierarchy, axes, max_results=max_matrices
        )
        if not matrices:
            raise EvaluationError(
                f"no parallelism matrix exists for {axes.describe()} on "
                f"{self.topology.hierarchy.describe()}"
            )

        simulator = self.simulator
        before = (
            simulator.profile_hits,
            simulator.profile_misses,
            simulator.batch_prices,
            simulator.batch_payloads,
            simulator.batch_fallbacks,
        )
        synthesizer = Synthesizer(
            max_program_size=self.max_program_size, node_limit=self.node_limit
        )
        # Reductions that share a request differ only in payload: synthesize
        # their strategies once per matrix and price each strategy over the
        # whole payload vector in one batched call.
        groups: "OrderedDict[ReductionRequest, List[int]]" = OrderedDict()
        for i, reduction in enumerate(reductions):
            groups.setdefault(reduction.request, []).append(i)

        evaluations: List[PlacementEvaluation] = []
        for matrix in matrices:
            placement = DevicePlacement(matrix)
            choices: List[Optional[ReductionChoice]] = [None] * len(reductions)
            for request, members in groups.items():
                group = [reductions[i] for i in members]
                group_choices = self._group_choices(
                    request, group, matrix, placement, synthesizer, simulator, algorithm
                )
                for i, choice in zip(members, group_choices):
                    choices[i] = choice
            evaluations.append(PlacementEvaluation(matrix=matrix, choices=tuple(choices)))
        evaluations.sort(key=lambda evaluation: evaluation.total_seconds)
        provenance = {
            "profile_hits": simulator.profile_hits - before[0],
            "profile_misses": simulator.profile_misses - before[1],
            "batch_prices": simulator.batch_prices - before[2],
            "batch_payloads": simulator.batch_payloads - before[3],
            "batch_fallbacks": simulator.batch_fallbacks - before[4],
        }
        return MultiReductionPlan(
            axes=axes,
            reductions=tuple(reductions),
            algorithm=algorithm,
            placements=evaluations,
            provenance=provenance,
        )

    # ------------------------------------------------------------------ #
    def _group_choices(
        self,
        request: ReductionRequest,
        group: Sequence[WeightedReduction],
        matrix: ParallelismMatrix,
        placement: DevicePlacement,
        synthesizer: Synthesizer,
        simulator: ProgramSimulator,
        algorithm: NCCLAlgorithm,
    ) -> List[ReductionChoice]:
        """Best strategy per reduction in ``group`` (all share ``request``).

        One synthesis run covers the group; every candidate is priced across
        the group's distinct payloads in a single :meth:`~ProgramSimulator.
        simulate_batch` call, and each payload column keeps the strict-``<``
        first-better selection of the per-reduction scalar scan — identical
        winners and identical floats.
        """
        baseline = default_all_reduce(placement, request)
        if baseline.num_steps == 0:
            return [
                ReductionChoice(
                    reduction=reduction,
                    program=baseline,
                    mnemonic="-",
                    seconds=0.0,
                    all_reduce_seconds=0.0,
                )
                for reduction in group
            ]

        # Distinct payloads in first-occurrence order; each reduction in the
        # group maps to one column of the batched results.
        payloads: List[float] = []
        columns: List[int] = []
        column_of: Dict[float, int] = {}
        for reduction in group:
            payload = float(reduction.bytes_per_device)
            column = column_of.get(payload)
            if column is None:
                column = len(payloads)
                column_of[payload] = column
                payloads.append(payload)
            columns.append(column)

        baseline_totals = simulator.simulate_batch(baseline, payloads, algorithm).totals

        best_programs: List[LoweredProgram] = [baseline] * len(payloads)
        best_mnemonics: List[str] = ["AR"] * len(payloads)
        best_seconds: List[float] = list(baseline_totals)

        hierarchy = build_synthesis_hierarchy(matrix, request)
        result = synthesizer.synthesize(hierarchy)
        for synthesized in result.programs:
            lowered = lower_synthesized(synthesized, hierarchy, placement)
            totals = simulator.simulate_batch(lowered, payloads, algorithm).totals
            mnemonic: Optional[str] = None
            for column, seconds in enumerate(totals):
                if seconds < best_seconds[column]:
                    if mnemonic is None:
                        mnemonic = program_mnemonic(synthesized.program)
                    best_seconds[column] = seconds
                    best_programs[column] = lowered
                    best_mnemonics[column] = mnemonic
        return [
            ReductionChoice(
                reduction=reduction,
                program=best_programs[column],
                mnemonic=best_mnemonics[column],
                seconds=best_seconds[column],
                all_reduce_seconds=baseline_totals[column],
            )
            for reduction, column in zip(group, columns)
        ]
