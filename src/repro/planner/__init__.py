"""Placement planning across multiple reductions (paper §4.1).

A real training step usually performs more than one reduction — gradients
over the data-parallel axis, activations over the sharding axis, expert
all-to-alls, ... — and §4.1 of the paper points out that a placement that is
optimal for one of them can be catastrophic for another (the B1 vs. B3
trade-off in Table 3).  The planner in this package picks the placement that
minimises the *combined* cost of all reductions, using for every placement the
best synthesized strategy per reduction.
"""

from repro.planner.multi import (
    MultiReductionPlan,
    MultiReductionPlanner,
    PlacementEvaluation,
    ReductionChoice,
    WeightedReduction,
)

__all__ = [
    "WeightedReduction",
    "ReductionChoice",
    "PlacementEvaluation",
    "MultiReductionPlan",
    "MultiReductionPlanner",
]
