"""Small self-contained utilities shared across the package.

The synthesis core relies on two pieces of integer machinery:

* ordered factorizations of level cardinalities (:mod:`repro.utils.factorization`),
  used to enumerate parallelism matrices, and
* mixed-radix encoding/decoding (:mod:`repro.utils.mixed_radix`), used to map
  between device coordinates, parallelism coordinates and flat device ids.

:mod:`repro.utils.tabulate` renders the evaluation tables without external
dependencies, and :mod:`repro.utils.validation` hosts shared argument checks.
"""

from repro.utils.factorization import (
    divisors,
    ordered_factorizations,
    prime_factorization,
    count_ordered_factorizations,
)
from repro.utils.mixed_radix import (
    MixedRadix,
    decode as mixed_radix_decode,
    encode as mixed_radix_encode,
)
from repro.utils.tabulate import format_table
from repro.utils.validation import (
    check_positive_int,
    check_positive_ints,
    check_probability,
)

__all__ = [
    "divisors",
    "ordered_factorizations",
    "prime_factorization",
    "count_ordered_factorizations",
    "MixedRadix",
    "mixed_radix_encode",
    "mixed_radix_decode",
    "format_table",
    "check_positive_int",
    "check_positive_ints",
    "check_probability",
]
