"""Mixed-radix coordinate arithmetic.

Devices in a hierarchical system are naturally addressed by one digit per
hierarchy level (most-significant digit at the root).  Parallelism matrices
refine this further: each entry of the matrix is one digit position.  All
conversions between flat indices and digit vectors in the package go through
the helpers in this module so that the digit ordering convention is defined in
exactly one place:

* digit 0 is the most significant (root / level 0),
* the last digit is the least significant (leaf level),
* ``encode(digits, radices)`` therefore equals
  ``digits[-1] + radices[-1] * (digits[-2] + radices[-2] * (...))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import HierarchyError

__all__ = ["encode", "decode", "MixedRadix"]


def _check_radices(radices: Sequence[int]) -> None:
    for r in radices:
        if r < 1:
            raise HierarchyError(f"mixed-radix radices must be >= 1, got {list(radices)}")


def encode(digits: Sequence[int], radices: Sequence[int]) -> int:
    """Encode ``digits`` (most-significant first) under ``radices`` to a flat index."""
    if len(digits) != len(radices):
        raise HierarchyError(
            f"digit/radix length mismatch: {len(digits)} digits vs {len(radices)} radices"
        )
    _check_radices(radices)
    value = 0
    for digit, radix in zip(digits, radices):
        if not 0 <= digit < radix:
            raise HierarchyError(f"digit {digit} out of range for radix {radix}")
        value = value * radix + digit
    return value


def decode(value: int, radices: Sequence[int]) -> Tuple[int, ...]:
    """Decode a flat index into digits (most-significant first) under ``radices``."""
    _check_radices(radices)
    total = 1
    for r in radices:
        total *= r
    if not 0 <= value < total:
        raise HierarchyError(f"value {value} out of range for radices {list(radices)}")
    digits: List[int] = [0] * len(radices)
    for position in range(len(radices) - 1, -1, -1):
        radix = radices[position]
        digits[position] = value % radix
        value //= radix
    return tuple(digits)


@dataclass(frozen=True)
class MixedRadix:
    """A fixed sequence of radices with encode/decode/iteration helpers.

    Example
    -------
    >>> mr = MixedRadix((2, 3))
    >>> mr.size
    6
    >>> mr.encode((1, 2))
    5
    >>> mr.decode(5)
    (1, 2)
    """

    radices: Tuple[int, ...]

    def __post_init__(self) -> None:
        _check_radices(self.radices)

    @property
    def size(self) -> int:
        """Total number of representable values (product of the radices)."""
        total = 1
        for r in self.radices:
            total *= r
        return total

    def encode(self, digits: Sequence[int]) -> int:
        return encode(digits, self.radices)

    def decode(self, value: int) -> Tuple[int, ...]:
        return decode(value, self.radices)

    def __len__(self) -> int:
        return len(self.radices)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        """Iterate over all digit vectors in increasing flat-index order."""
        for value in range(self.size):
            yield self.decode(value)

    def sub(self, positions: Sequence[int]) -> "MixedRadix":
        """Return the mixed radix restricted to ``positions`` (in the given order)."""
        return MixedRadix(tuple(self.radices[p] for p in positions))
