"""Plain-text table rendering for the evaluation harness.

The benchmark harness prints the rows of each paper table; this module renders
them without third-party dependencies.  Numbers are formatted compactly and
columns are right-aligned unless they contain text.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_cell", "format_table"]


def format_cell(value: object, float_fmt: str = "{:.2f}") -> str:
    """Render a single table cell: floats via ``float_fmt``, None as ``-``."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows: List[List[str]] = [[format_cell(c, float_fmt) for c in row] for row in rows]
    header_row = [str(h) for h in headers]
    n_cols = len(header_row)
    for row in rendered_rows:
        if len(row) != n_cols:
            raise ValueError(f"row has {len(row)} cells, expected {n_cols}: {row}")

    widths = [len(h) for h in header_row]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def _fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (n_cols - 1)))
    lines.append(_fmt_row(header_row))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(_fmt_row(row) for row in rendered_rows)
    return "\n".join(lines)
