"""Integer factorization helpers.

Parallelism-matrix enumeration (paper §3.1) repeatedly needs all ways of
writing a hierarchy-level cardinality ``h`` as an *ordered* product of ``k``
positive factors: one factor per parallelism axis.  The functions here are
deliberately plain Python (the integers involved are tiny — device counts of
at most a few thousand) and are exhaustively tested against brute force.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import HierarchyError

__all__ = [
    "prime_factorization",
    "divisors",
    "ordered_factorizations",
    "count_ordered_factorizations",
    "multiplicities",
]


def prime_factorization(n: int) -> Dict[int, int]:
    """Return the prime factorization of ``n`` as a ``{prime: exponent}`` dict.

    ``prime_factorization(1)`` is the empty dict.  Raises
    :class:`~repro.errors.HierarchyError` for ``n < 1``.
    """
    if n < 1:
        raise HierarchyError(f"cannot factorize non-positive integer {n}")
    factors: Dict[int, int] = {}
    remaining = n
    p = 2
    while p * p <= remaining:
        while remaining % p == 0:
            factors[p] = factors.get(p, 0) + 1
            remaining //= p
        p += 1 if p == 2 else 2
    if remaining > 1:
        factors[remaining] = factors.get(remaining, 0) + 1
    return factors


@lru_cache(maxsize=None)
def divisors(n: int) -> Tuple[int, ...]:
    """Return all positive divisors of ``n`` in increasing order."""
    if n < 1:
        raise HierarchyError(f"cannot list divisors of non-positive integer {n}")
    small: List[int] = []
    large: List[int] = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return tuple(small + large[::-1])


def ordered_factorizations(n: int, k: int) -> Iterator[Tuple[int, ...]]:
    """Yield every tuple ``(f0, ..., f_{k-1})`` of positive ints with product ``n``.

    The factors are *ordered*: ``(2, 1)`` and ``(1, 2)`` are distinct results.
    This is exactly the set of ways one hierarchy level of cardinality ``n``
    can be split across ``k`` parallelism axes.
    """
    if n < 1:
        raise HierarchyError(f"cannot factorize non-positive integer {n}")
    if k < 0:
        raise HierarchyError(f"number of factors must be non-negative, got {k}")
    if k == 0:
        if n == 1:
            yield ()
        return
    if k == 1:
        yield (n,)
        return

    def _rec(remaining: int, slots: int) -> Iterator[Tuple[int, ...]]:
        if slots == 1:
            yield (remaining,)
            return
        for d in divisors(remaining):
            for rest in _rec(remaining // d, slots - 1):
                yield (d,) + rest

    yield from _rec(n, k)


def count_ordered_factorizations(n: int, k: int) -> int:
    """Count ordered factorizations of ``n`` into ``k`` factors without enumerating.

    Uses the standard multiplicative formula: if ``n = prod p_i^{e_i}`` then the
    count is ``prod C(e_i + k - 1, k - 1)`` (stars and bars per prime).
    """
    if n < 1:
        raise HierarchyError(f"cannot factorize non-positive integer {n}")
    if k < 0:
        raise HierarchyError(f"number of factors must be non-negative, got {k}")
    if k == 0:
        return 1 if n == 1 else 0
    from math import comb

    total = 1
    for exponent in prime_factorization(n).values():
        total *= comb(exponent + k - 1, k - 1)
    return total


def multiplicities(values: Sequence[int]) -> Dict[int, int]:
    """Return a ``{value: count}`` histogram of ``values`` (ordering-insensitive)."""
    hist: Dict[int, int] = {}
    for v in values:
        hist[v] = hist.get(v, 0) + 1
    return hist
