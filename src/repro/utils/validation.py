"""Shared argument-validation helpers.

These are intentionally tiny: they centralise error messages so that the
exceptions users see are consistent across subsystems.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError

__all__ = ["check_positive_int", "check_positive_ints", "check_probability", "check_non_negative"]


def check_positive_int(value: int, name: str, exc: type = ReproError) -> int:
    """Raise ``exc`` unless ``value`` is an integer >= 1; return it otherwise."""
    if not isinstance(value, (int,)) or isinstance(value, bool) or value < 1:
        raise exc(f"{name} must be a positive integer, got {value!r}")
    return value


def check_non_negative(value: float, name: str, exc: type = ReproError) -> float:
    """Raise ``exc`` unless ``value`` is a non-negative number; return it otherwise."""
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
        raise exc(f"{name} must be a non-negative number, got {value!r}")
    return float(value)


def check_positive_ints(values: Sequence[int], name: str, exc: type = ReproError) -> tuple:
    """Validate a non-empty sequence of positive integers; return it as a tuple."""
    if len(values) == 0:
        raise exc(f"{name} must be non-empty")
    return tuple(check_positive_int(v, f"{name}[{i}]", exc) for i, v in enumerate(values))


def check_probability(value: float, name: str, exc: type = ReproError) -> float:
    """Raise ``exc`` unless ``0 <= value <= 1``; return ``value`` otherwise."""
    if not isinstance(value, (int, float)) or isinstance(value, bool) or not 0.0 <= value <= 1.0:
        raise exc(f"{name} must be a probability in [0, 1], got {value!r}")
    return float(value)
