"""Numerical execution of lowered programs on the in-memory cluster.

Each collective is implemented directly on the devices' chunked buffers,
following the same conventions as the Hoare semantics (group member 0 is the
root, ReduceScatter deals contiguous blocks of the currently-valid chunks).
Executing a program therefore provides an end-to-end functional check that a
synthesized strategy really computes the requested reduction — the role that
running the lowered XLA/NCCL program on GPUs plays in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import RuntimeExecutionError
from repro.runtime.cluster import SimCluster
from repro.semantics.collectives import Collective
from repro.synthesis.lowering import LoweredProgram, LoweredStep

__all__ = ["CollectiveExecutor", "ExecutionTrace", "execute_program"]


@dataclass(frozen=True)
class TraceEvent:
    """One executed collective over one group (for debugging and tests)."""

    step: int
    collective: Collective
    group: Tuple[int, ...]
    chunks_before: Tuple[int, ...]
    chunks_after: Tuple[int, ...]


@dataclass
class ExecutionTrace:
    """Chronological record of every group-collective executed."""

    events: List[TraceEvent] = field(default_factory=list)

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    @property
    def num_events(self) -> int:
        return len(self.events)

    def events_for_step(self, step: int) -> List[TraceEvent]:
        return [e for e in self.events if e.step == step]


@dataclass
class CollectiveExecutor:
    """Executes collectives on a :class:`~repro.runtime.cluster.SimCluster`."""

    cluster: SimCluster
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)

    # ------------------------------------------------------------------ #
    # Group-level collectives
    # ------------------------------------------------------------------ #
    def _check_group(self, group: Sequence[int]) -> None:
        if len(group) < 2:
            raise RuntimeExecutionError(f"group {group} needs at least 2 devices")
        for d in group:
            if not 0 <= d < self.cluster.num_devices:
                raise RuntimeExecutionError(f"device {d} out of range")
        if len(set(group)) != len(group):
            raise RuntimeExecutionError(f"group {group} contains duplicate devices")

    def _common_chunks(self, group: Sequence[int], op: Collective) -> Tuple[int, ...]:
        chunk_sets = [self.cluster[d].sorted_valid_chunks for d in group]
        first = chunk_sets[0]
        for d, chunks in zip(group, chunk_sets):
            if chunks != first:
                raise RuntimeExecutionError(
                    f"{op}: devices in group {tuple(group)} hold different chunk sets"
                )
        if not first:
            raise RuntimeExecutionError(f"{op}: group {tuple(group)} holds no valid chunks")
        return first

    def all_reduce(self, group: Sequence[int]) -> None:
        self._check_group(group)
        chunks = self._common_chunks(group, Collective.ALL_REDUCE)
        for chunk in chunks:
            total = np.sum([self.cluster[d].chunk(chunk) for d in group], axis=0)
            for d in group:
                self.cluster[d].set_chunk(chunk, total)

    def reduce_scatter(self, group: Sequence[int]) -> None:
        self._check_group(group)
        chunks = self._common_chunks(group, Collective.REDUCE_SCATTER)
        if len(chunks) % len(group) != 0:
            raise RuntimeExecutionError(
                f"ReduceScatter: {len(chunks)} chunks not divisible by group size {len(group)}"
            )
        per_member = len(chunks) // len(group)
        totals = {
            chunk: np.sum([self.cluster[d].chunk(chunk) for d in group], axis=0)
            for chunk in chunks
        }
        for position, d in enumerate(group):
            kept = set(chunks[position * per_member : (position + 1) * per_member])
            device = self.cluster[d]
            for chunk in chunks:
                if chunk in kept:
                    device.set_chunk(chunk, totals[chunk])
                else:
                    device.invalidate([chunk])

    def all_gather(self, group: Sequence[int]) -> None:
        self._check_group(group)
        ownership: Dict[int, int] = {}
        sizes = set()
        for d in group:
            chunks = self.cluster[d].sorted_valid_chunks
            if not chunks:
                raise RuntimeExecutionError(f"AllGather: device {d} holds no valid chunks")
            sizes.add(len(chunks))
            for chunk in chunks:
                if chunk in ownership:
                    raise RuntimeExecutionError(
                        f"AllGather: chunk {chunk} held by both device {ownership[chunk]} and {d}"
                    )
                ownership[chunk] = d
        if len(sizes) != 1:
            raise RuntimeExecutionError("AllGather: members hold different chunk counts")
        for chunk, owner in ownership.items():
            values = self.cluster[owner].chunk(chunk)
            for d in group:
                self.cluster[d].set_chunk(chunk, values)

    def reduce(self, group: Sequence[int]) -> None:
        self._check_group(group)
        chunks = self._common_chunks(group, Collective.REDUCE)
        root = group[0]
        for chunk in chunks:
            total = np.sum([self.cluster[d].chunk(chunk) for d in group], axis=0)
            self.cluster[root].set_chunk(chunk, total)
        for d in group[1:]:
            self.cluster[d].invalidate(chunks)

    def broadcast(self, group: Sequence[int]) -> None:
        self._check_group(group)
        root = group[0]
        root_chunks = self.cluster[root].sorted_valid_chunks
        if not root_chunks:
            raise RuntimeExecutionError("Broadcast: the root device holds no valid chunks")
        for chunk in root_chunks:
            values = self.cluster[root].chunk(chunk)
            for d in group[1:]:
                self.cluster[d].set_chunk(chunk, values)

    # ------------------------------------------------------------------ #
    # Program execution
    # ------------------------------------------------------------------ #
    _DISPATCH = {
        Collective.ALL_REDUCE: all_reduce,
        Collective.REDUCE_SCATTER: reduce_scatter,
        Collective.ALL_GATHER: all_gather,
        Collective.REDUCE: reduce,
        Collective.BROADCAST: broadcast,
    }

    def execute_step(self, step_index: int, step: LoweredStep) -> None:
        """Execute all groups of one step (order within the step is irrelevant)."""
        handler = self._DISPATCH[step.collective]
        for group in step.groups:
            before = {d: self.cluster[d].sorted_valid_chunks for d in group}
            handler(self, group)
            for d in group:
                self.trace.record(
                    TraceEvent(
                        step=step_index,
                        collective=step.collective,
                        group=tuple(group),
                        chunks_before=before[d],
                        chunks_after=self.cluster[d].sorted_valid_chunks,
                    )
                )

    def execute(self, program: LoweredProgram) -> ExecutionTrace:
        """Execute the whole program; return the trace."""
        if program.num_devices != self.cluster.num_devices:
            raise RuntimeExecutionError(
                f"program expects {program.num_devices} devices, cluster has "
                f"{self.cluster.num_devices}"
            )
        for step_index, step in enumerate(program.steps):
            self.execute_step(step_index, step)
        return self.trace


def execute_program(program: LoweredProgram, cluster: SimCluster) -> ExecutionTrace:
    """Execute ``program`` on ``cluster`` in place and return the trace."""
    return CollectiveExecutor(cluster).execute(program)
