"""In-memory multi-device runtime.

This package plays the role NCCL/XLA execution plays in the paper, in two ways:

* **Functional execution** — :mod:`repro.runtime.cluster` /
  :mod:`repro.runtime.executor` hold one NumPy buffer per device and execute a
  lowered program's collectives chunk by chunk, so every synthesized strategy
  can be checked to compute *numerically* the same result as the requested
  reduction (:mod:`repro.runtime.verification`).
* **Timing measurement** — :mod:`repro.runtime.events` is a flow-level
  discrete-event simulator with max-min fair bandwidth sharing and a noise
  model (:mod:`repro.runtime.noise`).  It is intentionally a finer-grained and
  *different* model than the analytic predictor in :mod:`repro.cost`, and
  stands in for the paper's GCP measurements ("the testbed") when evaluating
  predictor accuracy (Table 5, Figure 11).
"""

from repro.runtime.device import SimDevice
from repro.runtime.cluster import SimCluster
from repro.runtime.executor import CollectiveExecutor, execute_program
from repro.runtime.verification import verify_program
from repro.runtime.noise import NoiseModel
from repro.runtime.events import FlowNetwork, TestbedSimulator, MeasurementResult

__all__ = [
    "SimDevice",
    "SimCluster",
    "CollectiveExecutor",
    "execute_program",
    "verify_program",
    "NoiseModel",
    "FlowNetwork",
    "TestbedSimulator",
    "MeasurementResult",
]
