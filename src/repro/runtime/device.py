"""A simulated device holding one payload buffer.

The payload of every device is split into ``num_chunks`` equal chunks (one per
participating device, mirroring the chunk rows of the semantic state
matrices).  A device tracks which chunks it currently holds *valid* data for:
``ReduceScatter`` leaves each member with only its share of chunks, and
``Reduce`` clears non-root members entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Set, Tuple

import numpy as np

from repro.errors import RuntimeExecutionError

__all__ = ["SimDevice"]


@dataclass
class SimDevice:
    """One device of the in-memory runtime."""

    device_id: int
    num_chunks: int
    chunk_elems: int
    buffer: np.ndarray
    valid_chunks: Set[int] = field(default_factory=set)

    @classmethod
    def with_data(
        cls, device_id: int, num_chunks: int, chunk_elems: int, data: np.ndarray
    ) -> "SimDevice":
        """Create a device holding ``data`` (all chunks valid)."""
        expected = num_chunks * chunk_elems
        if data.shape != (expected,):
            raise RuntimeExecutionError(
                f"device {device_id}: expected buffer of {expected} elements, got {data.shape}"
            )
        return cls(
            device_id=device_id,
            num_chunks=num_chunks,
            chunk_elems=chunk_elems,
            buffer=np.array(data, dtype=np.float64, copy=True),
            valid_chunks=set(range(num_chunks)),
        )

    # ------------------------------------------------------------------ #
    # Chunk access
    # ------------------------------------------------------------------ #
    def _check_chunk(self, chunk: int) -> None:
        if not 0 <= chunk < self.num_chunks:
            raise RuntimeExecutionError(
                f"chunk {chunk} out of range for {self.num_chunks} chunks"
            )

    def chunk(self, chunk: int) -> np.ndarray:
        """Return a copy of one chunk's data (valid or not)."""
        self._check_chunk(chunk)
        start = chunk * self.chunk_elems
        return self.buffer[start : start + self.chunk_elems].copy()

    def set_chunk(self, chunk: int, values: np.ndarray, valid: bool = True) -> None:
        """Overwrite one chunk and mark it valid/invalid."""
        self._check_chunk(chunk)
        if values.shape != (self.chunk_elems,):
            raise RuntimeExecutionError(
                f"chunk values must have {self.chunk_elems} elements, got {values.shape}"
            )
        start = chunk * self.chunk_elems
        self.buffer[start : start + self.chunk_elems] = values
        if valid:
            self.valid_chunks.add(chunk)
        else:
            self.valid_chunks.discard(chunk)

    def invalidate(self, chunks: Iterable[int]) -> None:
        for chunk in chunks:
            self._check_chunk(chunk)
            self.valid_chunks.discard(chunk)

    def holds(self, chunk: int) -> bool:
        self._check_chunk(chunk)
        return chunk in self.valid_chunks

    @property
    def sorted_valid_chunks(self) -> Tuple[int, ...]:
        return tuple(sorted(self.valid_chunks))

    @property
    def num_valid_chunks(self) -> int:
        return len(self.valid_chunks)

    def full_payload(self) -> np.ndarray:
        """The whole buffer (only meaningful when every chunk is valid)."""
        if len(self.valid_chunks) != self.num_chunks:
            raise RuntimeExecutionError(
                f"device {self.device_id} holds only {len(self.valid_chunks)} of "
                f"{self.num_chunks} chunks"
            )
        return self.buffer.copy()

    def describe(self) -> str:
        return (
            f"device {self.device_id}: {self.num_valid_chunks}/{self.num_chunks} chunks valid"
        )
