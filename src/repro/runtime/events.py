"""Flow-level discrete-event "testbed" simulator.

This module produces the *measurements* of the reproduction: for every
lowered program it simulates each step as a set of concurrent flows over the
machine's links, using progressive max-min fair bandwidth sharing, link
efficiencies and seeded noise (:mod:`repro.runtime.noise`).

It is intentionally a different model from the analytic predictor in
:mod:`repro.cost.simulator`:

* bandwidth is shared max-min fairly and recomputed whenever a flow finishes,
  instead of assuming worst-case static sharing for the whole step;
* every flow explicitly occupies all resources along its path (NIC of every
  node it touches, host PCIe links, the intra-node medium or the member GPU
  ports), so multi-resource bottlenecks emerge rather than being picked ahead
  of time;
* link efficiencies, a cross-PCIe-domain penalty and log-normal noise are
  applied.

Because the two models differ, comparing the analytic predictor's ranking
against these measurements (Table 5, Figure 11) is a genuine accuracy
evaluation rather than a tautology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.cost.nccl import NCCLAlgorithm, bytes_on_wire, latency_steps
from repro.errors import ReproError
from repro.runtime.noise import NoiseModel
from repro.semantics.collectives import Collective, apply_collective
from repro.semantics.goals import initial_context
from repro.semantics.state import DeviceState
from repro.synthesis.lowering import LoweredProgram
from repro.topology.topology import MachineTopology

__all__ = ["Flow", "FlowNetwork", "MeasurementResult", "TestbedSimulator"]

ResourceKey = Tuple[str, Hashable]


@dataclass
class Flow:
    """One group's traffic within a step: bytes to move across a set of resources."""

    flow_id: int
    total_bytes: float
    resources: Tuple[ResourceKey, ...]
    fixed_seconds: float = 0.0
    remaining_bytes: float = field(init=False)

    def __post_init__(self) -> None:
        if self.total_bytes < 0:
            raise ReproError("a flow cannot carry negative bytes")
        if not self.resources:
            raise ReproError("a flow must use at least one resource")
        self.remaining_bytes = self.total_bytes


class FlowNetwork:
    """Max-min fair progressive-filling simulation of concurrent flows.

    Resources have capacities in bytes/s; each active flow receives the
    max-min fair share over all resources it traverses.  Whenever the earliest
    flow completes, rates are recomputed.  The completion time of each flow is
    returned; the caller typically takes the maximum as the step time.
    """

    def __init__(self, capacities: Dict[ResourceKey, float]):
        for key, capacity in capacities.items():
            if capacity <= 0:
                raise ReproError(f"resource {key} must have positive capacity")
        self.capacities = dict(capacities)

    # ------------------------------------------------------------------ #
    def _fair_share_rates(self, flows: Sequence[Flow]) -> Dict[int, float]:
        """Classic water-filling max-min fair allocation."""
        active = {f.flow_id: f for f in flows}
        remaining_capacity = dict(self.capacities)
        unfixed = set(active)
        rates: Dict[int, float] = {}

        while unfixed:
            # Fair share offered by each resource to its un-fixed flows.
            best_share = None
            bottleneck: Optional[ResourceKey] = None
            for resource, capacity in remaining_capacity.items():
                users = [fid for fid in unfixed if resource in active[fid].resources]
                if not users:
                    continue
                share = capacity / len(users)
                if best_share is None or share < best_share:
                    best_share = share
                    bottleneck = resource
            if bottleneck is None or best_share is None:
                # Remaining flows use only resources without pressure; give them
                # the full capacity of their tightest resource.
                for fid in unfixed:
                    caps = [remaining_capacity[r] for r in active[fid].resources
                            if r in remaining_capacity]
                    rates[fid] = min(caps) if caps else float("inf")
                break
            # Fix every un-fixed flow crossing the bottleneck at the fair share.
            fixed_now = [fid for fid in unfixed
                         if bottleneck in active[fid].resources]
            for fid in fixed_now:
                rates[fid] = best_share
                unfixed.remove(fid)
                for resource in active[fid].resources:
                    if resource in remaining_capacity:
                        remaining_capacity[resource] = max(
                            remaining_capacity[resource] - best_share, 1e-9
                        )
            remaining_capacity.pop(bottleneck, None)
        return rates

    def run(self, flows: Sequence[Flow]) -> Dict[int, float]:
        """Simulate all flows to completion; return finish time per flow id."""
        for flow in flows:
            for resource in flow.resources:
                if resource not in self.capacities:
                    raise ReproError(f"flow {flow.flow_id} uses unknown resource {resource}")
        finish: Dict[int, float] = {}
        active: List[Flow] = [f for f in flows if f.total_bytes > 0]
        for flow in flows:
            if flow.total_bytes == 0:
                finish[flow.flow_id] = flow.fixed_seconds
        now = 0.0
        while active:
            rates = self._fair_share_rates(active)
            # Earliest completion among active flows at current rates.
            time_left = [
                flow.remaining_bytes / rates[flow.flow_id] if rates[flow.flow_id] > 0 else float("inf")
                for flow in active
            ]
            dt = min(time_left)
            now += dt
            still_active: List[Flow] = []
            for flow, t in zip(active, time_left):
                flow.remaining_bytes -= rates[flow.flow_id] * dt
                if t <= dt + 1e-15 or flow.remaining_bytes <= 1e-9:
                    finish[flow.flow_id] = now + flow.fixed_seconds
                else:
                    still_active.append(flow)
            active = still_active
        return finish


@dataclass(frozen=True)
class StepMeasurement:
    """Measured duration of one step."""

    collective: Collective
    num_groups: int
    seconds: float


@dataclass(frozen=True)
class MeasurementResult:
    """Testbed measurement of one program (averaged over ``num_runs`` runs)."""

    total_seconds: float
    per_run_seconds: Tuple[float, ...]
    steps: Tuple[StepMeasurement, ...]
    algorithm: NCCLAlgorithm
    bytes_per_device: float
    label: str = ""

    def describe(self) -> str:
        runs = ", ".join(f"{t:.3f}" for t in self.per_run_seconds)
        return f"{self.label or 'program'}: {self.total_seconds:.4f}s measured (runs: {runs})"


@dataclass
class TestbedSimulator:
    """Stand-in for the paper's GCP testbed: measures lowered programs."""

    # Not a pytest test class despite the name.
    __test__ = False

    topology: MachineTopology
    noise: NoiseModel = field(default_factory=NoiseModel)
    base_overhead: float = 50e-6

    # ------------------------------------------------------------------ #
    # Resource construction
    # ------------------------------------------------------------------ #
    def _resource_capacities(self) -> Dict[ResourceKey, float]:
        capacities: Dict[ResourceKey, float] = {}
        hierarchy = self.topology.hierarchy
        nic_level = self.topology.nic_level
        nic_link = self.topology.interconnect_for_level(nic_level)
        nic_eff = self.noise.link_efficiency(nic_link.kind)

        # One NIC resource per NIC-owning instance.
        nic_instances = {
            hierarchy.ancestor_instance(d, nic_level) for d in range(hierarchy.num_devices)
        }
        for instance in nic_instances:
            capacities[("nic", instance)] = (
                nic_link.bandwidth * self.topology.nics_per_instance * nic_eff
            )
            if self.topology.host_link is not None:
                host = self.topology.host_link
                capacities[("host", instance)] = (
                    host.bandwidth * self.noise.link_efficiency(host.kind)
                )

        # Intra-node media / per-device ports for every deeper level.
        for level in range(nic_level + 1, hierarchy.num_levels):
            link = self.topology.interconnect_for_level(level)
            efficiency = self.noise.link_efficiency(link.kind)
            parents = {
                hierarchy.ancestor_instance(d, level - 1)
                for d in range(hierarchy.num_devices)
            }
            if link.kind.is_shared_medium:
                for parent in parents:
                    capacities[("medium", (level, parent))] = link.bandwidth * efficiency
            else:
                for device in range(hierarchy.num_devices):
                    capacities[("port", (level, device))] = link.bandwidth * efficiency
        return capacities

    def _flow_resources(self, group: Sequence[int]) -> Tuple[ResourceKey, ...]:
        span = self.topology.span_level(group)
        resources: List[ResourceKey] = []
        if span <= self.topology.nic_level:
            for instance in self.topology.nic_instances_touched(group):
                resources.append(("nic", instance))
                if self.topology.host_link is not None:
                    resources.append(("host", instance))
        else:
            link = self.topology.interconnect_for_level(span)
            if link.kind.is_shared_medium:
                parent = self.topology.hierarchy.ancestor_instance(group[0], span - 1)
                resources.append(("medium", (span, parent)))
            else:
                for device in group:
                    resources.append(("port", (span, device)))
        return tuple(resources)

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #
    def measure(
        self,
        program: LoweredProgram,
        bytes_per_device: float,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        num_runs: int = 3,
    ) -> MeasurementResult:
        """Measure ``program`` ``num_runs`` times and report the average."""
        if num_runs < 1:
            raise ReproError("num_runs must be >= 1")
        if program.num_devices != self.topology.num_devices:
            raise ReproError(
                f"program is over {program.num_devices} devices but the topology has "
                f"{self.topology.num_devices}"
            )
        capacities = self._resource_capacities()
        per_run: List[float] = []
        last_steps: List[StepMeasurement] = []
        for _ in range(num_runs):
            total, last_steps = self._measure_once(
                program, bytes_per_device, algorithm, capacities
            )
            per_run.append(total)
        return MeasurementResult(
            total_seconds=sum(per_run) / len(per_run),
            per_run_seconds=tuple(per_run),
            steps=tuple(last_steps),
            algorithm=algorithm,
            bytes_per_device=bytes_per_device,
            label=program.label,
        )

    def _measure_once(
        self,
        program: LoweredProgram,
        bytes_per_device: float,
        algorithm: NCCLAlgorithm,
        capacities: Dict[ResourceKey, float],
    ) -> Tuple[float, List[StepMeasurement]]:
        context = initial_context(program.num_devices)
        total = 0.0
        steps: List[StepMeasurement] = []
        has_host = self.topology.host_link is not None
        for step in program.steps:
            flows: List[Flow] = []
            updates: Dict[int, DeviceState] = {}
            for flow_id, group in enumerate(step.groups):
                pre = [context[d] for d in group]
                payload = max(s.chunk_fraction() for s in pre) * bytes_per_device
                volume = bytes_on_wire(step.collective, algorithm, len(group), payload)
                resources = self._flow_resources(group)
                crosses = any(key == "nic" for key, _ in resources)
                factor = self.noise.flow_factor()
                if crosses:
                    factor *= self.noise.cross_domain_factor(has_host)
                hops = latency_steps(step.collective, algorithm, len(group))
                link = self.topology.link_for_group(group)
                flows.append(
                    Flow(
                        flow_id=flow_id,
                        total_bytes=volume * factor,
                        resources=resources,
                        fixed_seconds=hops * link.latency,
                    )
                )
                post = apply_collective(step.collective, pre)
                for device, state in zip(group, post):
                    updates[device] = state
            network = FlowNetwork(capacities)
            finish_times = network.run(flows)
            step_seconds = (
                max(finish_times.values()) if finish_times else 0.0
            ) + self.base_overhead + self.noise.step_overhead_jitter()
            total += step_seconds
            steps.append(
                StepMeasurement(
                    collective=step.collective,
                    num_groups=step.num_groups,
                    seconds=step_seconds,
                )
            )
            context = context.replace(updates)
        return total, steps
