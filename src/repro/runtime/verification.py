"""Numerical verification of lowered reduction programs.

:func:`verify_program` builds a cluster with random payloads, executes the
program with the in-memory runtime, and checks that every device ends up
holding exactly the element-wise sum of the initial payloads of its reduction
group.  This is the strongest correctness check in the repository: it
exercises lowering, group ordering, root selection and the chunk bookkeeping
of every collective at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import VerificationError
from repro.hierarchy.parallelism import ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.runtime.cluster import SimCluster
from repro.runtime.executor import execute_program
from repro.synthesis.lowering import LoweredProgram

__all__ = ["VerificationReport", "verify_program"]


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one numerical verification run."""

    ok: bool
    num_devices: int
    max_abs_error: float
    failures: Tuple[str, ...] = ()

    def describe(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        detail = f"max |error| = {self.max_abs_error:.2e}"
        if self.failures:
            detail += "; " + "; ".join(self.failures[:3])
        return f"{status}: {self.num_devices} devices, {detail}"


def verify_program(
    program: LoweredProgram,
    groups: Sequence[Sequence[int]],
    elems_per_chunk: int = 3,
    seed: int = 0,
    atol: float = 1e-9,
    raise_on_failure: bool = False,
) -> VerificationReport:
    """Execute ``program`` and check it implements the reduction over ``groups``.

    ``groups`` must partition the devices; devices in a singleton group are
    expected to keep their initial payload untouched.
    """
    cluster = SimCluster.create(program.num_devices, elems_per_chunk, seed=seed)
    execute_program(program, cluster)

    failures: List[str] = []
    max_error = 0.0
    covered: set = set()
    for group in groups:
        expected = cluster.expected_reduction(group)
        for device in group:
            covered.add(device)
            sim = cluster[device]
            if sim.num_valid_chunks != sim.num_chunks:
                failures.append(
                    f"device {device} holds only {sim.num_valid_chunks}/{sim.num_chunks} chunks"
                )
                continue
            error = float(np.max(np.abs(sim.full_payload() - expected)))
            max_error = max(max_error, error)
            if error > atol:
                failures.append(f"device {device} off by {error:.2e}")
    missing = set(range(program.num_devices)) - covered
    if missing:
        failures.append(f"groups do not cover devices {sorted(missing)}")

    report = VerificationReport(
        ok=not failures,
        num_devices=program.num_devices,
        max_abs_error=max_error,
        failures=tuple(failures),
    )
    if raise_on_failure and not report.ok:
        raise VerificationError(report.describe())
    return report


def verify_against_placement(
    program: LoweredProgram,
    placement: DevicePlacement,
    request: ReductionRequest,
    **kwargs,
) -> VerificationReport:
    """Convenience wrapper: derive the groups from a placement and verify."""
    groups = placement.reduction_groups(request)
    return verify_program(program, groups, **kwargs)
