"""A cluster of simulated devices with identically-shaped payloads."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import RuntimeExecutionError
from repro.runtime.device import SimDevice

__all__ = ["SimCluster"]


@dataclass
class SimCluster:
    """All devices participating in one reduction, plus their initial payloads."""

    devices: List[SimDevice]
    initial_payloads: np.ndarray  # shape (num_devices, payload_elems)

    @classmethod
    def create(
        cls,
        num_devices: int,
        elems_per_chunk: int = 4,
        init: Optional[Callable[[int], np.ndarray]] = None,
        seed: Optional[int] = 0,
    ) -> "SimCluster":
        """Create a cluster of ``num_devices`` devices.

        Each device's payload has ``num_devices * elems_per_chunk`` elements
        (one chunk per device, mirroring the state-matrix convention).  By
        default payloads are random (seeded); pass ``init`` to control them.
        """
        if num_devices < 1:
            raise RuntimeExecutionError("num_devices must be >= 1")
        if elems_per_chunk < 1:
            raise RuntimeExecutionError("elems_per_chunk must be >= 1")
        payload_elems = num_devices * elems_per_chunk
        rng = np.random.default_rng(seed)
        payloads = np.empty((num_devices, payload_elems), dtype=np.float64)
        for d in range(num_devices):
            if init is not None:
                data = np.asarray(init(d), dtype=np.float64)
                if data.shape != (payload_elems,):
                    raise RuntimeExecutionError(
                        f"init({d}) must return {payload_elems} elements, got {data.shape}"
                    )
            else:
                data = rng.normal(size=payload_elems)
            payloads[d] = data
        devices = [
            SimDevice.with_data(d, num_devices, elems_per_chunk, payloads[d])
            for d in range(num_devices)
        ]
        return cls(devices=devices, initial_payloads=payloads)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def num_chunks(self) -> int:
        return self.devices[0].num_chunks

    @property
    def elems_per_chunk(self) -> int:
        return self.devices[0].chunk_elems

    def __getitem__(self, device_id: int) -> SimDevice:
        return self.devices[device_id]

    def __iter__(self) -> Iterator[SimDevice]:
        return iter(self.devices)

    # ------------------------------------------------------------------ #
    # Oracles for verification
    # ------------------------------------------------------------------ #
    def expected_reduction(self, group: Sequence[int]) -> np.ndarray:
        """The element-wise sum of the *initial* payloads of ``group``."""
        for d in group:
            if not 0 <= d < self.num_devices:
                raise RuntimeExecutionError(f"device {d} out of range")
        return self.initial_payloads[list(group)].sum(axis=0)

    def describe(self) -> str:
        return (
            f"cluster of {self.num_devices} devices, "
            f"{self.num_chunks} chunks x {self.elems_per_chunk} elems each"
        )
