"""Noise and imperfection models for the testbed simulator.

Real measurements differ from an analytic alpha-beta model for many reasons:
protocol overheads per link class, imperfect overlap, stragglers and plain
network noise.  The :class:`NoiseModel` captures these as

* a deterministic per-link-kind *efficiency* (the fraction of nominal
  bandwidth a well-tuned transfer achieves),
* a multiplicative log-normal perturbation per flow, and
* a per-step jitter on the fixed overhead.

The model is seeded and therefore reproducible.  The defaults deliberately
include an extra penalty on cross-PCIe-domain traffic so that the V100 system
is modelled *less* faithfully by the analytic predictor than the A100 system —
mirroring the paper's observation (§5) that its simulator's absolute accuracy
is lower on V100 because of "imperfect modeling of cross-domain
communication".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import ReproError
from repro.topology.links import LinkKind

__all__ = ["NoiseModel"]

_DEFAULT_EFFICIENCY: Dict[LinkKind, float] = {
    LinkKind.NVSWITCH: 0.92,
    LinkKind.NVLINK_RING: 0.88,
    LinkKind.PCIE: 0.80,
    LinkKind.NIC: 0.85,
    LinkKind.DCN: 0.85,
    LinkKind.SHARED_MEMORY: 0.75,
}


@dataclass
class NoiseModel:
    """Reproducible noise / efficiency model for testbed measurements.

    Parameters
    ----------
    seed:
        Seed for the internal generator; measurements with the same seed are
        identical.
    sigma:
        Standard deviation of the log-normal flow perturbation (0 disables it).
    step_jitter:
        Uniform jitter, in seconds, added to each step's fixed overhead.
    cross_domain_penalty:
        Extra multiplicative slowdown applied to cross-node flows on systems
        with a host (PCIe) link — the effect the analytic model ignores.
    """

    seed: int = 0
    sigma: float = 0.05
    step_jitter: float = 20e-6
    cross_domain_penalty: float = 1.25
    efficiencies: Dict[LinkKind, float] = field(default_factory=lambda: dict(_DEFAULT_EFFICIENCY))
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ReproError("sigma must be non-negative")
        if self.step_jitter < 0:
            raise ReproError("step_jitter must be non-negative")
        if self.cross_domain_penalty < 1:
            raise ReproError("cross_domain_penalty must be >= 1")
        for kind, value in self.efficiencies.items():
            if not 0 < value <= 1:
                raise ReproError(f"efficiency for {kind} must be in (0, 1], got {value}")
        self._rng = np.random.default_rng(self.seed)

    def reset(self, seed: Optional[int] = None) -> None:
        """Re-seed the generator (used to get repeated 'runs' of an experiment)."""
        self._rng = np.random.default_rng(self.seed if seed is None else seed)

    def link_efficiency(self, kind: LinkKind) -> float:
        """Deterministic fraction of nominal bandwidth achieved on ``kind`` links."""
        return self.efficiencies.get(kind, 0.85)

    def flow_factor(self) -> float:
        """Multiplicative slowdown (>= ~1) applied to one flow's transfer time."""
        if self.sigma == 0:
            return 1.0
        return float(np.exp(self._rng.normal(loc=self.sigma**2, scale=self.sigma)))

    def step_overhead_jitter(self) -> float:
        """Additional per-step overhead in seconds."""
        if self.step_jitter == 0:
            return 0.0
        return float(self._rng.uniform(0.0, self.step_jitter))

    def cross_domain_factor(self, has_host_link: bool) -> float:
        """Penalty for cross-node flows that also traverse a host link."""
        return self.cross_domain_penalty if has_host_link else 1.0
