"""Generic topology constructors.

The GCP systems of the paper live in :mod:`repro.topology.gcp`; these builders
exist so that examples, tests and users can model other hierarchies (the
rack/server/CPU/GPU system of Figure 2a, flat single-switch boxes, deeper
data-center trees, ...) without hand-assembling :class:`MachineTopology`
instances.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.hierarchy.levels import SystemHierarchy
from repro.topology.links import GB, LinkKind, LinkSpec
from repro.topology.topology import MachineTopology

__all__ = ["flat_system", "hierarchical_system"]


def flat_system(
    num_devices: int,
    bandwidth: float = 100 * GB,
    latency: float = 2e-6,
    name: str = "flat",
    device_name: str = "gpu",
) -> MachineTopology:
    """A single-switch system: every device talks to every other at ``bandwidth``."""
    if num_devices < 1:
        raise TopologyError("num_devices must be >= 1")
    hierarchy = SystemHierarchy.from_pairs([(device_name, num_devices)])
    link = LinkSpec(f"{name}-switch", LinkKind.NVSWITCH, bandwidth, latency)
    return MachineTopology(
        name=name,
        hierarchy=hierarchy,
        interconnects=(link,),
        nic_level=0,
    )


def hierarchical_system(
    levels: Sequence[Tuple[str, int]],
    bandwidths: Sequence[float],
    latencies: Optional[Sequence[float]] = None,
    kinds: Optional[Sequence[LinkKind]] = None,
    name: str = "custom",
    nic_level: int = 0,
    host_link: Optional[LinkSpec] = None,
) -> MachineTopology:
    """Build a hierarchical machine from per-level bandwidths.

    Parameters
    ----------
    levels:
        ``(name, cardinality)`` pairs, root level first.
    bandwidths:
        One bandwidth (bytes/s) per level: ``bandwidths[k]`` is the link used
        by traffic among instances of level ``k`` within their parent.
    latencies / kinds:
        Optional per-level latencies (default 2 µs) and link kinds (default:
        NIC for level 0, NVSWITCH otherwise).
    """
    hierarchy = SystemHierarchy.from_pairs(levels)
    if len(bandwidths) != hierarchy.num_levels:
        raise TopologyError(
            f"expected {hierarchy.num_levels} bandwidths, got {len(bandwidths)}"
        )
    if latencies is None:
        latencies = [2e-6] * hierarchy.num_levels
    if len(latencies) != hierarchy.num_levels:
        raise TopologyError("latencies must match the number of levels")
    if kinds is None:
        kinds = [LinkKind.NIC if level == 0 else LinkKind.NVSWITCH
                 for level in range(hierarchy.num_levels)]
    if len(kinds) != hierarchy.num_levels:
        raise TopologyError("kinds must match the number of levels")

    interconnects = tuple(
        LinkSpec(
            name=f"{name}-{hierarchy.names[level]}-link",
            kind=kinds[level],
            bandwidth=bandwidths[level],
            latency=latencies[level],
        )
        for level in range(hierarchy.num_levels)
    )
    return MachineTopology(
        name=name,
        hierarchy=hierarchy,
        interconnects=interconnects,
        nic_level=nic_level,
        host_link=host_link,
    )
