"""Interconnect link specifications.

Bandwidths follow the paper's §5 assumptions:

* data-center NICs: 100 Gb/s assumed 60% utilised → 8 GB/s effective,
* PCIe switches: 32 GB/s,
* V100 NVLink ring: 135 GB/s per direction (90% of nominal 150 GB/s),
* A100 NVSwitch: 270 GB/s (90% of nominal 300 GB/s).

Latency values are not stated in the paper; we use typical figures (they only
matter for tiny payloads and for the per-step launch overhead of long
programs).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.errors import TopologyError

__all__ = ["LinkKind", "LinkSpec", "GB", "GIB"]

GB = 1e9
GIB = float(1 << 30)


class LinkKind(str, Enum):
    """Broad classes of interconnects used to pick contention behaviour."""

    NVSWITCH = "nvswitch"        # full-bandwidth switch: concurrent groups do not contend
    NVLINK_RING = "nvlink-ring"  # shared ring: concurrent intra-node groups contend
    PCIE = "pcie"                # host PCIe switch
    NIC = "nic"                  # per-node NIC into the data-center network
    DCN = "dcn"                  # data-center network fabric
    SHARED_MEMORY = "shm"        # cross-socket shared memory

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_shared_medium(self) -> bool:
        """True when concurrent groups over the same instance share bandwidth."""
        return self in (LinkKind.NVLINK_RING, LinkKind.NIC, LinkKind.DCN, LinkKind.PCIE)


@dataclass(frozen=True)
class LinkSpec:
    """Bandwidth/latency description of one interconnect class."""

    name: str
    kind: LinkKind
    bandwidth: float  # bytes per second, per direction
    latency: float    # seconds per hop

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise TopologyError(f"link {self.name!r} must have positive bandwidth")
        if self.latency < 0:
            raise TopologyError(f"link {self.name!r} must have non-negative latency")

    def scaled(self, bandwidth_factor: float) -> "LinkSpec":
        """A copy of this link with its bandwidth multiplied by ``bandwidth_factor``."""
        if bandwidth_factor <= 0:
            raise TopologyError("bandwidth_factor must be positive")
        return replace(self, bandwidth=self.bandwidth * bandwidth_factor)

    def transfer_time(self, num_bytes: float) -> float:
        """Time to push ``num_bytes`` through this link at full bandwidth."""
        if num_bytes < 0:
            raise TopologyError("cannot transfer a negative number of bytes")
        return self.latency + num_bytes / self.bandwidth

    def describe(self) -> str:
        return f"{self.name} ({self.kind}, {self.bandwidth / GB:.1f} GB/s, {self.latency * 1e6:.1f} us)"


# Canonical links used by the GCP builders; exposed for reuse in examples/tests.
DCN_NIC_8GBS = LinkSpec("dcn-nic", LinkKind.NIC, bandwidth=8 * GB, latency=5e-6)
PCIE_32GBS = LinkSpec("pcie-switch", LinkKind.PCIE, bandwidth=32 * GB, latency=2e-6)
NVLINK_RING_135GBS = LinkSpec("nvlink-ring", LinkKind.NVLINK_RING, bandwidth=135 * GB, latency=2e-6)
NVSWITCH_270GBS = LinkSpec("nvswitch", LinkKind.NVSWITCH, bandwidth=270 * GB, latency=2e-6)
