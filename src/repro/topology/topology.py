"""Machine topologies: a hierarchy plus one interconnect per level.

``interconnects[k]`` is the link used for traffic among *instances of level
k* inside their common parent — i.e. when the lowest common ancestor (LCA) of
the communicating devices sits at level ``k - 1`` (or at the implicit "world"
for ``k = 0``).  For the A100 system ``[(node, 2), (gpu, 16)]`` this means

* ``interconnects[0]`` = the data-center NIC fabric (node-to-node traffic),
* ``interconnects[1]`` = the NVSwitch (GPU-to-GPU traffic within a node).

``host_link`` optionally models a PCIe hop that cross-node traffic must also
traverse (the V100 system); the effective cross-node bandwidth is then the
minimum of the NIC and the host link.

``nic_level`` names the level whose instances own a NIC; the cost model uses
it to count how many concurrent groups share each NIC.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from functools import cached_property
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.hierarchy.levels import SystemHierarchy
from repro.topology.links import LinkSpec

__all__ = ["MachineTopology"]


@dataclass(frozen=True)
class MachineTopology:
    """A hierarchical machine with per-level interconnects."""

    name: str
    hierarchy: SystemHierarchy
    interconnects: Tuple[LinkSpec, ...]
    nic_level: int = 0
    nics_per_instance: int = 1
    host_link: Optional[LinkSpec] = None
    # Memo tables for the group-oriented queries below.  The cost model asks
    # the same questions about the same groups once per step of every
    # candidate program, so these pure functions of the (frozen) hierarchy
    # are cached per instance.  compare=False keeps them out of __eq__ and
    # the generated __hash__; __getstate__ keeps them out of pickles (the
    # worker pool ships topologies once per pool); each table is flushed at
    # _MEMO_LIMIT entries so a long-lived topology cannot grow unboundedly.
    _span_levels: Dict[Tuple[int, ...], int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _instances: Dict[Tuple[int, int], Tuple[int, ...]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _nic_instances: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], ...]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if len(self.interconnects) != self.hierarchy.num_levels:
            raise TopologyError(
                f"expected one interconnect per hierarchy level "
                f"({self.hierarchy.num_levels}), got {len(self.interconnects)}"
            )
        if not 0 <= self.nic_level < self.hierarchy.num_levels:
            raise TopologyError(f"nic_level {self.nic_level} out of range")
        if self.nics_per_instance < 1:
            raise TopologyError("nics_per_instance must be >= 1")

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def num_devices(self) -> int:
        return self.hierarchy.num_devices

    @property
    def num_levels(self) -> int:
        return self.hierarchy.num_levels

    def interconnect_for_level(self, level: int) -> LinkSpec:
        """Link used by traffic among instances of ``level`` within their parent."""
        if not 0 <= level < self.num_levels:
            raise TopologyError(f"level {level} out of range")
        return self.interconnects[level]

    # ------------------------------------------------------------------ #
    # Group-oriented queries used by the cost model
    # ------------------------------------------------------------------ #
    def span_level(self, devices: Sequence[int]) -> int:
        """The level whose interconnect carries this group's traffic.

        Defined as ``lowest_common_level(devices) + 1``: the shallowest level
        at which the group's members live in different instances.  A group of
        one device spans nothing and raises.
        """
        if len(devices) < 2:
            raise TopologyError("span_level needs at least two devices")
        key = tuple(devices)
        cached = self._span_levels.get(key)
        if cached is not None:
            return cached
        lca = self.hierarchy.lowest_common_level(devices)
        span = lca + 1
        if span >= self.num_levels:  # pragma: no cover - defensive; lca < leaf for >=2 devices
            raise TopologyError("devices do not diverge at any level")
        self._memoize(self._span_levels, key, span)
        return span

    def link_for_group(self, devices: Sequence[int]) -> LinkSpec:
        """The (bottleneck) interconnect for a communication group."""
        return self.interconnect_for_level(self.span_level(devices))

    def effective_cross_bandwidth(self) -> float:
        """Per-NIC-flow bandwidth for cross-node traffic (min of NIC and host link)."""
        nic = self.interconnects[self.nic_level].bandwidth
        if self.host_link is not None:
            return min(nic, self.host_link.bandwidth)
        return nic

    def crosses_nic(self, devices: Sequence[int]) -> bool:
        """True when the group's traffic passes through the per-node NICs."""
        return self.span_level(devices) <= self.nic_level

    def nic_instances_touched(self, devices: Sequence[int]) -> Tuple[Tuple[int, ...], ...]:
        """The NIC-owning instances (identified by their coordinates) this group touches."""
        key = tuple(devices)
        cached = self._nic_instances.get(key)
        if cached is not None:
            return cached
        instances = {self.instance_of(d, self.nic_level) for d in devices}
        result = tuple(sorted(instances))
        self._memoize(self._nic_instances, key, result)
        return result

    def instance_of(self, device: int, level: int) -> Tuple[int, ...]:
        """Coordinates of ``device``'s ancestor instance at ``level``."""
        key = (device, level)
        cached = self._instances.get(key)
        if cached is None:
            cached = self.hierarchy.ancestor_instance(device, level)
            self._memoize(self._instances, key, cached)
        return cached

    _MEMO_LIMIT = 1 << 16

    @staticmethod
    def _memoize(table: Dict, key, value) -> None:
        if len(table) >= MachineTopology._MEMO_LIMIT:
            table.clear()  # flush rather than grow without bound
        table[key] = value

    @cached_property
    def devices_per_nic_instance(self) -> int:
        per = 1
        for level in range(self.nic_level + 1, self.num_levels):
            per *= self.hierarchy.cardinalities[level]
        return per

    # ------------------------------------------------------------------ #
    # Pickling — memo tables are per-process working state, not identity;
    # shipping a topology to a worker pool must not drag them (or any
    # cached_property value) along.
    # ------------------------------------------------------------------ #
    _MEMO_FIELDS = ("_span_levels", "_instances", "_nic_instances")

    def __getstate__(self):
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in self._MEMO_FIELDS
        }

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        for name in self._MEMO_FIELDS:
            object.__setattr__(self, name, {})

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        lines = [f"{self.name}: {self.hierarchy.describe()}"]
        for level, link in enumerate(self.interconnects):
            lines.append(f"  level {level} ({self.hierarchy.names[level]}): {link.describe()}")
        if self.host_link is not None:
            lines.append(f"  host link: {self.host_link.describe()}")
        lines.append(
            f"  NICs: {self.nics_per_instance} per {self.hierarchy.names[self.nic_level]}"
        )
        return "\n".join(lines)

    def with_hierarchy(self, hierarchy: SystemHierarchy) -> "MachineTopology":
        """A copy of this topology with a different (compatible) hierarchy.

        Used to rename levels (e.g. to match a workload's vocabulary) while
        keeping the same structure; the cardinalities must be identical so the
        per-level interconnects still apply.
        """
        if hierarchy.cardinalities != self.hierarchy.cardinalities:
            raise TopologyError(
                "replacement hierarchy must have the same per-level cardinalities"
            )
        return MachineTopology(
            name=self.name,
            hierarchy=hierarchy,
            interconnects=self.interconnects,
            nic_level=self.nic_level,
            nics_per_instance=self.nics_per_instance,
            host_link=self.host_link,
        )
