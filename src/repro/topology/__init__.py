"""Hardware topology models (paper §2, Figure 9 and the §5 assumptions).

A :class:`~repro.topology.topology.MachineTopology` couples a
:class:`~repro.hierarchy.levels.SystemHierarchy` with one interconnect per
level (the link used when communicating devices' lowest common ancestor is an
instance of that level) plus NIC/host-link details needed for contention
modelling.  :mod:`repro.topology.gcp` provides the two GCP systems the paper
evaluates on; :mod:`repro.topology.builders` provides generic constructors for
custom systems (e.g. the rack/server/CPU/GPU system of Figure 2a).
"""

from repro.topology.links import LinkKind, LinkSpec
from repro.topology.topology import MachineTopology
from repro.topology.builders import flat_system, hierarchical_system
from repro.topology.gcp import a100_system, v100_system, figure2a_system

__all__ = [
    "LinkKind",
    "LinkSpec",
    "MachineTopology",
    "flat_system",
    "hierarchical_system",
    "a100_system",
    "v100_system",
    "figure2a_system",
]
