"""The two GCP GPU systems the paper evaluates on (Figure 9, §4–§5).

* :func:`a100_system` — ``num_nodes`` nodes, each with 16 A100 GPUs behind one
  NVSwitch and one NIC into the data-center network.  Synthesis hierarchy
  ``[num_nodes, 16]``.
* :func:`v100_system` — ``num_nodes`` nodes, each with 8 V100 GPUs on one
  NVLink ring; GPUs reach the NIC through PCIe switches (the paper folds the
  two PCIe domains of a node into one layer because the NVLink ring spans all
  8 GPUs).  Synthesis hierarchy ``[num_nodes, 8]``.
* :func:`figure2a_system` — the illustrative rack/server/CPU/GPU system of
  Figure 2a, used by the overview examples and tests.

Bandwidth assumptions follow §5: 8 GB/s effective NIC, 32 GB/s PCIe,
135 GB/s V100 NVLink ring, 270 GB/s A100 NVSwitch.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.hierarchy.levels import SystemHierarchy
from repro.topology.links import (
    DCN_NIC_8GBS,
    GB,
    NVLINK_RING_135GBS,
    NVSWITCH_270GBS,
    PCIE_32GBS,
    LinkKind,
    LinkSpec,
)
from repro.topology.topology import MachineTopology

__all__ = ["a100_system", "v100_system", "figure2a_system"]

A100_GPUS_PER_NODE = 16
V100_GPUS_PER_NODE = 8


def a100_system(num_nodes: int = 2, gpus_per_node: int = A100_GPUS_PER_NODE) -> MachineTopology:
    """The NVIDIA A100 system: nodes of 16 GPUs behind one NVSwitch and one NIC."""
    if num_nodes < 1:
        raise TopologyError("num_nodes must be >= 1")
    if gpus_per_node < 1:
        raise TopologyError("gpus_per_node must be >= 1")
    hierarchy = SystemHierarchy.from_pairs([("node", num_nodes), ("gpu", gpus_per_node)])
    return MachineTopology(
        name=f"a100-{num_nodes}x{gpus_per_node}",
        hierarchy=hierarchy,
        interconnects=(DCN_NIC_8GBS, NVSWITCH_270GBS),
        nic_level=0,
        nics_per_instance=1,
    )


def v100_system(num_nodes: int = 2, gpus_per_node: int = V100_GPUS_PER_NODE) -> MachineTopology:
    """The NVIDIA V100 system: nodes of 8 GPUs on an NVLink ring, NIC behind PCIe."""
    if num_nodes < 1:
        raise TopologyError("num_nodes must be >= 1")
    if gpus_per_node < 1:
        raise TopologyError("gpus_per_node must be >= 1")
    hierarchy = SystemHierarchy.from_pairs([("node", num_nodes), ("gpu", gpus_per_node)])
    return MachineTopology(
        name=f"v100-{num_nodes}x{gpus_per_node}",
        hierarchy=hierarchy,
        interconnects=(DCN_NIC_8GBS, NVLINK_RING_135GBS),
        nic_level=0,
        nics_per_instance=1,
        host_link=PCIE_32GBS,
    )


def figure2a_system(
    nvlink_bandwidth: float = 130 * GB,
    pcie_bandwidth: float = 32 * GB,
    qpi_bandwidth: float = 20 * GB,
    nic_bandwidth: float = 8 * GB,
) -> MachineTopology:
    """The rack / server / CPU / GPU system of paper Figure 2a (16 GPUs).

    One rack holds 2 servers; each server has 2 CPUs, each CPU connects 4
    GPUs.  GPUs under one CPU communicate over NVLink/PCIe, CPUs within a
    server over the inter-socket link, and servers over the rack network.
    """
    hierarchy = SystemHierarchy.from_pairs(
        [("rack", 1), ("server", 2), ("cpu", 2), ("gpu", 4)]
    )
    interconnects = (
        LinkSpec("rack-network", LinkKind.DCN, nic_bandwidth, 5e-6),
        LinkSpec("server-nic", LinkKind.NIC, nic_bandwidth, 5e-6),
        LinkSpec("cpu-interconnect", LinkKind.SHARED_MEMORY, qpi_bandwidth, 3e-6),
        LinkSpec("gpu-nvlink", LinkKind.NVLINK_RING, nvlink_bandwidth, 2e-6),
    )
    return MachineTopology(
        name="figure2a-rack",
        hierarchy=hierarchy,
        interconnects=interconnects,
        nic_level=1,
        nics_per_instance=1,
        host_link=LinkSpec("pcie", LinkKind.PCIE, pcie_bandwidth, 2e-6),
    )
